#ifndef DCV_RUNTIME_CHAOS_H_
#define DCV_RUNTIME_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace dcv {

/// What the chaos harness breaks mid-run. Chaos is *runtime* fault
/// injection — it kills pieces of the coordinator tree or severs transport
/// links — as opposed to the FaultSpec Channel, which models the paper's
/// lossy network between sites and coordinator. The two compose: a chaos
/// run still routes every protocol message through the Channel.
enum class ChaosKind : uint8_t {
  kNone = 0,
  /// Kill one shard coordinator thread. Virtual mode: the shard dies the
  /// instant it receives the doomed epoch's command, before sending
  /// anything, and the root re-adopts its sites (direct attachment) — the
  /// Channel call sequence is unchanged, so detections stay bit-identical
  /// to the lockstep simulator. Free-running mode: the shard dies between
  /// inbox batches and the root respawns a replacement that drains the
  /// same inbox, so no queued alarm or site-done message is lost.
  kKillShard,
  /// Sever the TCP link to one site-worker mid-run (socket transport
  /// only). The worker redials, the handshake fences stale generations,
  /// and unacked envelopes are replayed — detections are unaffected.
  kKillWorker,
  /// Push a rotated shard layout mid-run at a virtual epoch boundary
  /// (kLayoutUpdate / ack / switch), rebalancing the site->shard
  /// assignment without stopping the data plane.
  kReshard,
};

/// A chaos scenario: what to break, resolved where/when from the seed.
struct ChaosSpec {
  ChaosKind kind = ChaosKind::kNone;
  uint64_t seed = 0;

  bool enabled() const { return kind != ChaosKind::kNone; }
};

/// Where and when the chaos fires, resolved deterministically from the
/// spec's seed so every run of the same scenario breaks the same way.
struct ResolvedChaos {
  int target = -1;          ///< Shard (kKillShard) or worker (kKillWorker).
  int64_t fire_epoch = -1;  ///< Virtual mode: epoch the chaos fires at.
  int64_t fire_after_batches = -1;  ///< Free mode: inbox batches survived.
};

namespace chaos_internal {
inline uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace chaos_internal

/// Resolves a spec against the run's shape: `num_targets` is the shard
/// count (kKillShard / kReshard) or worker count (kKillWorker), and
/// `num_epochs` bounds the fire epoch. The fire epoch lands in
/// [1, num_epochs - 1] when the run is long enough (never epoch 0, so the
/// steady state is established first, and never past the end).
inline ResolvedChaos ResolveChaos(const ChaosSpec& spec, int64_t num_epochs,
                                  int num_targets) {
  ResolvedChaos r;
  if (!spec.enabled() || num_targets < 1) {
    return r;
  }
  const uint64_t a = chaos_internal::Splitmix64(spec.seed);
  const uint64_t b = chaos_internal::Splitmix64(a);
  r.target = static_cast<int>(a % static_cast<uint64_t>(num_targets));
  const int64_t span = num_epochs > 2 ? num_epochs - 2 : 1;
  r.fire_epoch = 1 + static_cast<int64_t>(b % static_cast<uint64_t>(span));
  r.fire_after_batches = 1 + static_cast<int64_t>(b % 8);
  return r;
}

inline const char* ChaosKindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kNone:
      return "none";
    case ChaosKind::kKillShard:
      return "kill-shard";
    case ChaosKind::kKillWorker:
      return "kill-worker";
    case ChaosKind::kReshard:
      return "reshard";
  }
  return "unknown";
}

/// Parses the `--chaos` flag values; "none" (or empty) disables chaos.
inline Result<ChaosKind> ParseChaosKind(std::string_view text) {
  if (text.empty() || text == "none") {
    return ChaosKind::kNone;
  }
  if (text == "kill-shard") {
    return ChaosKind::kKillShard;
  }
  if (text == "kill-worker") {
    return ChaosKind::kKillWorker;
  }
  if (text == "reshard") {
    return ChaosKind::kReshard;
  }
  return InvalidArgumentError(
      "unknown chaos kind '" + std::string(text) +
      "' (expected kill-shard, kill-worker, reshard, or none)");
}

}  // namespace dcv

#endif  // DCV_RUNTIME_CHAOS_H_
