#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "runtime/plan.h"
#include "runtime/site_actor.h"
#include "runtime/site_engine.h"
#include "runtime/transport.h"

namespace dcv {
namespace {

/// Hard ceiling on in-process worker threads. The actor engine's
/// historical thread-per-site default is fine at conformance scale but a
/// 100k-site run would ask the OS for 100k threads and die inside the
/// std::thread constructor; large fabrics belong to the multiplexed
/// engine, which never needs more threads than cores.
constexpr int kMaxWorkerThreads = 10'000;

struct LaunchPlan {
  std::vector<int64_t> weights;
  std::vector<int64_t> thresholds;
  std::vector<int64_t> domain_max;
};

Status ResolveWeights(int n, const RuntimeOptions& options,
                      std::vector<int64_t>* weights) {
  *weights = options.weights;
  if (weights->empty()) {
    weights->assign(static_cast<size_t>(n), 1);
  }
  if (static_cast<int>(weights->size()) != n) {
    return InvalidArgumentError("weights size mismatch");
  }
  for (int64_t w : *weights) {
    if (w < 1) {
      return InvalidArgumentError("weights must be >= 1");
    }
  }
  return OkStatus();
}

/// Resolves thresholds + domain maxima: explicit plan > solver-built plan >
/// unconstrained sites (synthetic throughput runs, polling protocol).
Status ResolvePlan(int n, const Trace* training, const RuntimeOptions& options,
                   LaunchPlan* plan) {
  if (!options.thresholds.empty()) {
    if (static_cast<int>(options.thresholds.size()) != n) {
      return InvalidArgumentError("thresholds size mismatch");
    }
    plan->thresholds = options.thresholds;
    plan->domain_max = options.domain_max;
  } else if (options.protocol == RuntimeProtocol::kLocalThreshold &&
             training != nullptr && training->num_epochs() > 0) {
    if (options.solver == nullptr) {
      return InvalidArgumentError(
          "local-threshold runtime needs a solver or explicit thresholds");
    }
    DCV_ASSIGN_OR_RETURN(
        LocalPlan built,
        BuildLocalPlan(*training, plan->weights, options.global_threshold,
                       *options.solver, options.histogram_buckets,
                       options.domain_headroom));
    plan->thresholds = std::move(built.thresholds);
    plan->domain_max = std::move(built.domain_max);
  } else {
    // No local constraints: sites never alarm. The polling protocol and
    // pure-throughput synthetic runs live here.
    plan->thresholds.assign(static_cast<size_t>(n),
                            std::numeric_limits<int64_t>::max());
    plan->domain_max.assign(static_cast<size_t>(n),
                            options.synthetic_max);
  }
  if (plan->domain_max.empty()) {
    plan->domain_max.assign(static_cast<size_t>(n), 0);
  }
  if (static_cast<int>(plan->domain_max.size()) != n) {
    return InvalidArgumentError("domain_max size mismatch");
  }
  return OkStatus();
}

/// Builds the coordinator config shared by every transport.
CoordinatorActor::Config MakeCoordinatorConfig(int n, const LaunchPlan& plan,
                                               const RuntimeOptions& options) {
  CoordinatorActor::Config ccfg;
  ccfg.num_sites = n;
  ccfg.weights = plan.weights;
  ccfg.global_threshold = options.global_threshold;
  ccfg.protocol = options.protocol;
  ccfg.poll_period = options.poll_period;
  ccfg.thresholds = plan.thresholds;
  ccfg.domain_max = plan.domain_max;
  ccfg.num_shards = options.num_shards;
  ccfg.faults = options.faults;
  ccfg.chaos = options.chaos;
  ccfg.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  ccfg.metrics = options.metrics;
  ccfg.recorder = options.recorder;
  return ccfg;
}

/// Socket-transport launch: this process runs only the coordinator; the
/// site actors live in site-worker processes (site_worker.h) that connect
/// over TCP. The protocol state machines are untouched — the coordinator
/// sees the same Transport interface — so virtual-time runs stay
/// bit-identical to the in-process and lockstep paths.
Result<RuntimeResult> LaunchSocket(int n, int64_t updates_per_site,
                                   const LaunchPlan& plan,
                                   const RuntimeOptions& options) {
  if (options.capture_updates) {
    return InvalidArgumentError(
        "capture_updates is not supported over the socket transport");
  }
  int workers = options.num_workers == 0 ? n : options.num_workers;
  if (workers < 1 || workers > n) {
    return InvalidArgumentError("num_workers must be in [1, num_sites]");
  }
  DCV_RETURN_IF_ERROR(MakeShardLayout(n, options.num_shards).status());
  SocketTransport::Options sopts = options.socket;
  sopts.virtual_time = options.virtual_time;
  sopts.metrics = options.metrics;
  sopts.recorder = options.recorder;
  sopts.num_shards = options.num_shards;
  if (options.recorder != nullptr) {
    // Distributed run: coordinator-side events get wall timestamps so the
    // merged Chrome trace can interleave them with worker lanes.
    options.recorder->EnableWallClock();
  }
  if (options.chaos.kind == ChaosKind::kKillWorker) {
    // Severing a worker link only makes sense if the fabric can heal;
    // workers must opt in on their side too (site-worker --allow-reconnect).
    sopts.allow_reconnect = true;
  }
  DCV_ASSIGN_OR_RETURN(
      std::unique_ptr<SocketTransport> transport,
      SocketTransport::Listen(n, workers, options.listen_port, sopts));
  if (options.on_listening) {
    options.on_listening(transport->port());
  }
  DCV_RETURN_IF_ERROR(transport->AcceptWorkers());
  if (options.recorder != nullptr) {
    options.recorder->DeclareSites(n);
  }

  CoordinatorActor coordinator(MakeCoordinatorConfig(n, plan, options));
  DCV_RETURN_IF_ERROR(coordinator.Init());

  // Initial threshold sync: in-process runs bake the thresholds into the
  // SiteActor configs; remote workers get them as the connection's first
  // envelopes instead. Control plane (uncharged — provisioning, not
  // protocol traffic), and per-connection FIFO means every site installs
  // its threshold before it evaluates anything.
  const bool local = options.protocol == RuntimeProtocol::kLocalThreshold;
  for (int i = 0; i < n; ++i) {
    ActorMessage update;
    update.kind = ActorMsgKind::kThresholdUpdate;
    update.epoch = -1;
    update.value = local ? plan.thresholds[static_cast<size_t>(i)]
                         : std::numeric_limits<int64_t>::max();
    if (!transport->Send(Envelope{kCoordinatorId, i, update})) {
      return InternalError("worker connection closed during threshold sync");
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  RuntimeResult result;
  Status run_status =
      options.virtual_time
          ? coordinator.RunVirtual(transport.get(), updates_per_site, &result)
          : coordinator.RunFree(transport.get(), &result);
  // Each worker pushes a final cumulative telemetry frame after its run
  // loop exits; wait for those pushes while the reader threads are still
  // draining (Shutdown's SHUT_RDWR would race the stream tail).
  if (run_status.ok() &&
      (options.metrics != nullptr || options.recorder != nullptr)) {
    transport->WaitForFinalTelemetry(/*timeout_ms=*/2000);
  }
  // Flushes the queued kShutdown broadcast, then closes the connections
  // (workers see a clean end of stream and exit their loops).
  transport->Shutdown();
  DCV_RETURN_IF_ERROR(run_status);
  const auto t1 = std::chrono::steady_clock::now();

  // Merge the telemetry plane: one document covering every process. The
  // coordinator's registry is the base; each worker's cumulative snapshot
  // folds in (counters sum, histograms merge, gauges namespace per worker)
  // and its trace events land in the run recorder on the worker's lane,
  // shifted onto the coordinator clock by the handshake-estimated offset.
  if (options.metrics != nullptr) {
    result.metrics = options.metrics->Snapshot();
  }
  for (const TelemetryFrame& f : transport->TakeWorkerTelemetry()) {
    result.metrics.MergeFrom(f.metrics,
                             "worker" + std::to_string(f.worker));
    if (options.recorder != nullptr) {
      for (const TelemetryTraceEvent& te : f.events) {
        obs::TraceEvent ev;
        ev.kind = static_cast<obs::TraceEventKind>(te.kind);
        ev.epoch = te.epoch;
        ev.site = te.site;
        ev.value = te.value;
        ev.duration_us = te.duration_us;
        ev.ts_us = te.ts_us != 0 ? te.ts_us + f.clock_offset_us : 0;
        ev.process = f.worker + 1;
        options.recorder->Record(ev);
      }
    }
  }

  if (options.virtual_time) {
    // Every site observes every epoch in lockstep; the actual counters live
    // in the worker processes.
    result.site_updates.assign(static_cast<size_t>(n), updates_per_site);
    result.total_updates = static_cast<int64_t>(n) * updates_per_site;
  }  // Free-running mode: RunFree filled these from the kSiteDone reports.
  result.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.updates_per_second =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.total_updates) / result.elapsed_seconds
          : 0.0;
  result.socket = transport->stats();
  return result;
}

/// Builds actors and threads, runs the coordinator on the calling thread,
/// joins, and fills the throughput/capture fields. `eval` is null for
/// synthetic runs.
Result<RuntimeResult> Launch(int n, const Trace* eval,
                             int64_t updates_per_site,
                             const LaunchPlan& plan,
                             const RuntimeOptions& options) {
  if (options.transport == TransportKind::kSocket) {
    return LaunchSocket(n, updates_per_site, plan, options);
  }
  const bool multiplexed = options.engine == SiteEngineKind::kMultiplexed;
  int workers = options.num_workers;
  if (workers == 0) {
    // Actor engine: thread-per-site, the historical default. Multiplexed
    // engine: one shard loop per core — a million sites must not mean a
    // million threads.
    workers = multiplexed
                  ? std::min(n, std::max(1, static_cast<int>(
                                                std::thread::
                                                    hardware_concurrency())))
                  : n;
  }
  if (workers < 1 || workers > n) {
    return InvalidArgumentError("num_workers must be in [1, num_sites]");
  }
  if (workers > kMaxWorkerThreads) {
    // std::thread construction past the OS task limit aborts the process
    // with an uncatchable std::system_error mid-spawn; refuse up front.
    return InvalidArgumentError(
        "run would spawn " + std::to_string(workers) +
        " worker threads (max " + std::to_string(kMaxWorkerThreads) +
        "); pass an explicit thread count or use the multiplexed engine");
  }
  DCV_RETURN_IF_ERROR(MakeShardLayout(n, options.num_shards).status());
  DCV_ASSIGN_OR_RETURN(std::unique_ptr<ThreadTransport> transport,
                       ThreadTransport::Create(n, workers,
                                               /*coordinator_capacity=*/0,
                                               /*worker_capacity=*/0,
                                               options.num_shards));
  if (options.recorder != nullptr) {
    options.recorder->DeclareSites(n);
  }

  // Sites never alarm in the polling protocol: the coordinator drives every
  // contact. The provisioned thresholds still ship so WhatIf-style reuse of
  // the plan is possible, but the site constraint is disabled.
  const bool local = options.protocol == RuntimeProtocol::kLocalThreshold;
  std::vector<std::unique_ptr<SiteActor>> sites;
  std::vector<std::vector<SiteActor*>> owned;
  std::vector<std::unique_ptr<SiteEngine>> engines;
  if (multiplexed) {
    // One SoA engine per worker; per-site config lands in slot order
    // (slot s of worker w is site s * workers + w).
    engines.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      SiteEngine::Config ecfg;
      ecfg.worker = w;
      ecfg.num_workers = workers;
      ecfg.num_sites = n;
      for (int site = w; site < n; site += workers) {
        ecfg.thresholds.push_back(
            local ? plan.thresholds[static_cast<size_t>(site)]
                  : std::numeric_limits<int64_t>::max());
        if (eval != nullptr) {
          ecfg.series.push_back(eval->SiteSeries(site));
        }
      }
      ecfg.synthetic_updates = eval == nullptr ? updates_per_site : 0;
      ecfg.seed = options.seed;
      ecfg.synthetic_max = options.synthetic_max;
      ecfg.capture_updates = options.capture_updates;
      ecfg.metrics = options.metrics;
      ecfg.recorder = options.recorder;
      engines.push_back(std::make_unique<SiteEngine>(std::move(ecfg)));
    }
  } else {
    sites.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      SiteActor::Config cfg;
      cfg.site = i;
      cfg.threshold = local ? plan.thresholds[static_cast<size_t>(i)]
                            : std::numeric_limits<int64_t>::max();
      if (eval != nullptr) {
        cfg.series = eval->SiteSeries(i);
      } else {
        cfg.synthetic_updates = updates_per_site;
      }
      cfg.seed = options.seed;
      cfg.synthetic_max = options.synthetic_max;
      cfg.capture_updates = options.capture_updates;
      cfg.metrics = options.metrics;
      cfg.recorder = options.recorder;
      sites.push_back(std::make_unique<SiteActor>(cfg));
    }
    owned.resize(static_cast<size_t>(workers));
    for (int i = 0; i < n; ++i) {
      owned[static_cast<size_t>(transport->WorkerOf(i))].push_back(
          sites[static_cast<size_t>(i)].get());
    }
  }

  CoordinatorActor coordinator(MakeCoordinatorConfig(n, plan, options));
  DCV_RETURN_IF_ERROR(coordinator.Init());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    Transport* t = transport.get();
    if (multiplexed) {
      SiteEngine* engine = engines[static_cast<size_t>(w)].get();
      if (options.virtual_time) {
        threads.emplace_back([t, engine] { engine->RunVirtual(t); });
      } else {
        threads.emplace_back([t, engine] { engine->RunFree(t); });
      }
    } else {
      const std::vector<SiteActor*>& mine = owned[static_cast<size_t>(w)];
      if (options.virtual_time) {
        threads.emplace_back(
            [t, w, &mine] { RunSiteWorkerVirtual(t, w, mine); });
      } else {
        threads.emplace_back([t, w, &mine] { RunSiteWorkerFree(t, w, mine); });
      }
    }
  }

  RuntimeResult result;
  Status run_status =
      options.virtual_time
          ? coordinator.RunVirtual(transport.get(), updates_per_site, &result)
          : coordinator.RunFree(transport.get(), &result);
  // Close the boxes before joining, on success as well as failure: a clean
  // run's workers exit on the kShutdown broadcast anyway (drain-on-shutdown
  // keeps queued messages poppable), and a failed run's workers — possibly
  // blocked mid-Push into a full inbox — are woken instead of wedging the
  // join forever.
  transport->Shutdown();
  for (std::thread& th : threads) {
    th.join();
  }
  DCV_RETURN_IF_ERROR(run_status);
  const auto t1 = std::chrono::steady_clock::now();

  result.site_updates.clear();
  result.total_updates = 0;
  if (multiplexed) {
    for (int i = 0; i < n; ++i) {
      const SiteEngine& engine = *engines[static_cast<size_t>(i % workers)];
      const int64_t processed =
          engine.updates_processed()[static_cast<size_t>(i / workers)];
      result.site_updates.push_back(processed);
      result.total_updates += processed;
    }
  } else {
    for (const auto& s : sites) {
      result.site_updates.push_back(s->updates_processed());
      result.total_updates += s->updates_processed();
    }
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.updates_per_second =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.total_updates) / result.elapsed_seconds
          : 0.0;
  if (options.capture_updates) {
    if (multiplexed) {
      for (int i = 0; i < n; ++i) {
        const SiteEngine& engine = *engines[static_cast<size_t>(i % workers)];
        result.captured_updates.push_back(
            engine.captured_updates()[static_cast<size_t>(i / workers)]);
      }
    } else {
      for (const auto& s : sites) {
        result.captured_updates.push_back(s->captured_updates());
      }
    }
  }
  if (options.metrics != nullptr) {
    // Single shared registry: the "merged" document is just its snapshot,
    // keeping the output shape identical to a socket-transport run.
    result.metrics = options.metrics->Snapshot();
  }
  return result;
}

/// Scores virtual-time detections against ground truth, exactly like the
/// lockstep runner's per-epoch accounting.
void ScoreAgainstTruth(const Trace& eval, const std::vector<int64_t>& weights,
                       const RuntimeOptions& options, RuntimeResult* result) {
  for (const EpochDetection& det : result->detections) {
    if (det.num_alarms > 0) {
      ++result->alarm_epochs;
      result->total_alarms += det.num_alarms;
    }
    if (det.polled) {
      ++result->polled_epochs;
    }
    const bool violated =
        eval.WeightedSum(det.epoch, weights) > options.global_threshold;
    if (violated) {
      ++result->true_violations;
      DCV_OBS_EVENT(options.recorder, obs::TraceEventKind::kViolation,
                    det.epoch, obs::TraceRecorder::kCoordinator,
                    det.violation_reported ? 1 : 0);
      if (det.violation_reported) {
        ++result->detected_violations;
      } else {
        ++result->missed_violations;
      }
    } else if (det.polled) {
      ++result->false_alarm_epochs;
    }
  }
}

}  // namespace

Result<RuntimeResult> RunMonitorRuntime(const Trace& training,
                                        const Trace& eval,
                                        const RuntimeOptions& options) {
  const int n = eval.num_sites();
  if (n < 1 || eval.num_epochs() == 0) {
    return InvalidArgumentError("eval trace must be nonempty");
  }
  if (training.num_epochs() > 0 && training.num_sites() != n) {
    return InvalidArgumentError(
        "training and eval traces have different site counts");
  }
  LaunchPlan plan;
  DCV_RETURN_IF_ERROR(ResolveWeights(n, options, &plan.weights));
  DCV_RETURN_IF_ERROR(ResolvePlan(n, &training, options, &plan));
  DCV_ASSIGN_OR_RETURN(
      RuntimeResult result,
      Launch(n, &eval, eval.num_epochs(), plan, options));
  if (options.virtual_time) {
    ScoreAgainstTruth(eval, plan.weights, options, &result);
  }
  return result;
}

Result<RuntimeResult> RunSyntheticRuntime(int num_sites,
                                          int64_t updates_per_site,
                                          const RuntimeOptions& options) {
  if (num_sites < 1 || updates_per_site < 1) {
    return InvalidArgumentError(
        "synthetic runtime needs >= 1 site and >= 1 update per site");
  }
  LaunchPlan plan;
  DCV_RETURN_IF_ERROR(ResolveWeights(num_sites, options, &plan.weights));
  DCV_RETURN_IF_ERROR(
      ResolvePlan(num_sites, /*training=*/nullptr, options, &plan));
  return Launch(num_sites, /*eval=*/nullptr, updates_per_site, plan, options);
}

}  // namespace dcv
