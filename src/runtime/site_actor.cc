#include "runtime/site_actor.h"

#include <algorithm>

namespace dcv {
namespace {

/// Finds the owned actor a site-addressed envelope is for (workers own a
/// handful of sites; linear scan beats a map at that size).
SiteActor* FindSite(const std::vector<SiteActor*>& sites, int32_t id) {
  for (SiteActor* s : sites) {
    if (s->site() == id) {
      return s;
    }
  }
  return nullptr;
}

}  // namespace

Rng MakeSiteRng(uint64_t seed, int site) {
  // Mix the site id in with an odd multiplier (SplitMix64's increment) so
  // site k's stream is unrelated to site k+1's even for adjacent seeds; the
  // Rng constructor then SplitMix-expands the mixed seed into full state.
  uint64_t mixed =
      seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(site) + 1));
  return Rng(mixed);
}

SiteActor::SiteActor(Config config)
    : config_(std::move(config)), rng_(MakeSiteRng(config_.seed, config_.site)) {
  if (config_.metrics != nullptr) {
    updates_counter_ = config_.metrics->counter("runtime/site/updates");
    alarms_counter_ = config_.metrics->counter("runtime/site/alarms");
  }
}

int64_t SiteActor::workload_size() const {
  return config_.series.empty() ? config_.synthetic_updates
                                : static_cast<int64_t>(config_.series.size());
}

int64_t SiteActor::ValueAt(int64_t index) {
  if (!config_.series.empty()) {
    return config_.series[static_cast<size_t>(index)];
  }
  // Synthetic stream: one draw per update, in stream order, from the
  // (seed, site)-derived RNG — reproducible regardless of interleaving.
  return rng_.UniformInt(0, config_.synthetic_max);
}

ActorMessage SiteActor::OnEpochStart(int64_t epoch, bool up) {
  current_value_ = ValueAt(epoch);
  ++updates_processed_;
  DCV_OBS_COUNT(updates_counter_, 1);
  if (config_.capture_updates) {
    captured_.push_back(current_value_);
  }
  ActorMessage report;
  report.kind = ActorMsgKind::kEpochReport;
  report.epoch = epoch;
  const bool alarmed = up && current_value_ > config_.threshold;
  report.flag = alarmed;
  report.value = alarmed ? current_value_ : 0;
  if (alarmed) {
    DCV_OBS_COUNT(alarms_counter_, 1);
    DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kLocalAlarm, epoch,
                  config_.site, current_value_);
  }
  return report;
}

bool SiteActor::NextUpdate(int64_t* value, bool* alarmed) {
  if (cursor_ >= workload_size()) {
    return false;
  }
  current_value_ = ValueAt(cursor_);
  ++cursor_;
  ++updates_processed_;
  DCV_OBS_COUNT(updates_counter_, 1);
  if (config_.capture_updates) {
    captured_.push_back(current_value_);
  }
  *value = current_value_;
  *alarmed = current_value_ > config_.threshold;
  if (*alarmed) {
    DCV_OBS_COUNT(alarms_counter_, 1);
    DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kLocalAlarm,
                  cursor_ - 1, config_.site, current_value_);
  }
  return true;
}

ActorMessage SiteActor::OnPollRequest(int64_t epoch) {
  ActorMessage response;
  response.kind = ActorMsgKind::kPollResponse;
  response.epoch = epoch;
  response.value = current_value_;
  return response;
}

void RunSiteWorkerVirtual(Transport* transport, int worker,
                          const std::vector<SiteActor*>& sites) {
  size_t live = sites.size();
  Envelope e;
  while (live > 0 && transport->RecvWorker(worker, &e)) {
    SiteActor* site = FindSite(sites, e.to);
    if (site == nullptr) {
      continue;
    }
    switch (e.msg.kind) {
      case ActorMsgKind::kEpochStart:
        transport->Send(Envelope{site->site(), kCoordinatorId,
                                 site->OnEpochStart(e.msg.epoch, e.msg.flag)});
        break;
      case ActorMsgKind::kPollRequest:
        transport->Send(Envelope{site->site(), kCoordinatorId,
                                 site->OnPollRequest(e.msg.epoch)});
        break;
      case ActorMsgKind::kThresholdUpdate:
        site->OnThresholdUpdate(e.msg.value);
        break;
      case ActorMsgKind::kShutdown:
        --live;
        break;
      default:
        break;
    }
  }
}

void RunSiteWorkerFree(Transport* transport, int worker,
                       const std::vector<SiteActor*>& sites) {
  size_t shutdowns_pending = sites.size();
  std::vector<SiteActor*> active(sites.begin(), sites.end());
  Envelope e;

  auto handle = [&](const Envelope& env) {
    SiteActor* site = FindSite(sites, env.to);
    if (site == nullptr) {
      return;
    }
    switch (env.msg.kind) {
      case ActorMsgKind::kPollRequest:
        transport->Send(Envelope{site->site(), kCoordinatorId,
                                 site->OnPollRequest(env.msg.epoch)});
        break;
      case ActorMsgKind::kThresholdUpdate:
        site->OnThresholdUpdate(env.msg.value);
        break;
      case ActorMsgKind::kShutdown:
        --shutdowns_pending;
        break;
      default:
        break;
    }
  };

  while (!active.empty()) {
    // Service control traffic without blocking the update stream.
    while (transport->TryRecvWorker(worker, &e)) {
      handle(e);
    }
    for (size_t i = 0; i < active.size();) {
      SiteActor* site = active[i];
      int64_t value = 0;
      bool alarmed = false;
      if (!site->NextUpdate(&value, &alarmed)) {
        ActorMessage done;
        done.kind = ActorMsgKind::kSiteDone;
        done.epoch = site->updates_processed();
        done.value = site->updates_processed();
        transport->Send(Envelope{site->site(), kCoordinatorId, done});
        active[i] = active.back();
        active.pop_back();
        continue;
      }
      if (alarmed) {
        ActorMessage alarm;
        alarm.kind = ActorMsgKind::kAlarm;
        alarm.epoch = site->updates_processed() - 1;
        alarm.value = value;
        // Blocks when the coordinator inbox is full: a slow coordinator
        // throttles its sites instead of dropping or buffering unboundedly.
        transport->Send(Envelope{site->site(), kCoordinatorId, alarm});
      }
      ++i;
    }
  }
  // Workloads drained; keep answering polls until every owned site has been
  // shut down (the coordinator may still be resolving in-flight rounds).
  while (shutdowns_pending > 0 && transport->RecvWorker(worker, &e)) {
    handle(e);
  }
}

}  // namespace dcv
