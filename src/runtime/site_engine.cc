#include "runtime/site_engine.h"

#include <numeric>
#include <thread>
#include <utility>

#include "runtime/site_actor.h"

namespace dcv {
namespace {

/// Pending-outbox high-water mark: past this many unsent envelopes the
/// free-running loop stops producing updates and spins on drain+flush
/// until the coordinator catches up — the non-blocking replacement for
/// the actor path's blocking alarm Send (bounded memory, same
/// backpressure).
constexpr size_t kOutboxCap = 8192;

/// Compact the pending outbox (erase the sent prefix) once the dead
/// prefix grows past this, so a long run with a slow coordinator never
/// accumulates an unbounded vector of already-sent envelopes.
constexpr size_t kCompactThreshold = 4096;

}  // namespace

SiteEngine::SiteEngine(Config config) : config_(std::move(config)) {
  const size_t slots = config_.thresholds.size();
  thresholds_ = config_.thresholds;
  values_.assign(slots, 0);
  cursors_.assign(slots, 0);
  updates_.assign(slots, 0);
  if (config_.series.empty()) {
    config_.series.resize(slots);
  }
  rngs_.reserve(slots);
  for (size_t slot = 0; slot < slots; ++slot) {
    rngs_.push_back(MakeSiteRng(config_.seed, SiteOf(slot)));
  }
  if (config_.capture_updates) {
    captured_.resize(slots);
  }
  if (config_.metrics != nullptr) {
    updates_counter_ = config_.metrics->counter("runtime/site/updates");
    alarms_counter_ = config_.metrics->counter("runtime/site/alarms");
  }
}

int SiteEngine::SlotOf(int32_t site) const {
  if (site < 0 || site >= config_.num_sites ||
      site % config_.num_workers != config_.worker) {
    return -1;
  }
  const int slot = site / config_.num_workers;
  return slot < static_cast<int>(num_slots()) ? slot : -1;
}

int64_t SiteEngine::workload_size(size_t slot) const {
  return config_.series[slot].empty()
             ? config_.synthetic_updates
             : static_cast<int64_t>(config_.series[slot].size());
}

int64_t SiteEngine::ValueAt(size_t slot, int64_t index) {
  if (!config_.series[slot].empty()) {
    return config_.series[slot][static_cast<size_t>(index)];
  }
  // Synthetic stream: one draw per update, in stream order, from the
  // (seed, site)-derived RNG owned by this slot — identical to the
  // SiteActor stream no matter how slots interleave within a batch.
  return rngs_[slot].UniformInt(0, config_.synthetic_max);
}

ActorMessage SiteEngine::OnEpochStart(size_t slot, int64_t epoch, bool up) {
  const int64_t value = ValueAt(slot, epoch);
  values_[slot] = value;
  ++updates_[slot];
  DCV_OBS_COUNT(updates_counter_, 1);
  if (config_.capture_updates) {
    captured_[slot].push_back(value);
  }
  ActorMessage report;
  report.kind = ActorMsgKind::kEpochReport;
  report.epoch = epoch;
  const bool alarmed = up && value > thresholds_[slot];
  report.flag = alarmed;
  report.value = alarmed ? value : 0;
  if (alarmed) {
    DCV_OBS_COUNT(alarms_counter_, 1);
    DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kLocalAlarm, epoch,
                  SiteOf(slot), value);
  }
  return report;
}

bool SiteEngine::NextUpdate(size_t slot, int64_t* value, bool* alarmed) {
  if (cursors_[slot] >= workload_size(slot)) {
    return false;
  }
  const int64_t v = ValueAt(slot, cursors_[slot]);
  values_[slot] = v;
  ++cursors_[slot];
  ++updates_[slot];
  DCV_OBS_COUNT(updates_counter_, 1);
  if (config_.capture_updates) {
    captured_[slot].push_back(v);
  }
  *value = v;
  *alarmed = v > thresholds_[slot];
  if (*alarmed) {
    DCV_OBS_COUNT(alarms_counter_, 1);
    DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kLocalAlarm,
                  cursors_[slot] - 1, SiteOf(slot), v);
  }
  return true;
}

ActorMessage SiteEngine::OnPollRequest(size_t slot, int64_t epoch) const {
  ActorMessage response;
  response.kind = ActorMsgKind::kPollResponse;
  response.epoch = epoch;
  response.value = values_[slot];
  return response;
}

void SiteEngine::RunVirtual(Transport* transport) {
  size_t live = num_slots();
  std::vector<Envelope> inbox;
  std::vector<Envelope> outbox;
  while (live > 0) {
    inbox.clear();
    if (transport->RecvWorkerAll(config_.worker, &inbox) == 0) {
      break;  // Fabric closed.
    }
    outbox.clear();
    for (const Envelope& e : inbox) {
      const int slot = SlotOf(e.to);
      if (slot < 0) {
        continue;
      }
      switch (e.msg.kind) {
        case ActorMsgKind::kEpochStart:
          outbox.push_back(
              Envelope{SiteOf(static_cast<size_t>(slot)), kCoordinatorId,
                       OnEpochStart(static_cast<size_t>(slot), e.msg.epoch,
                                    e.msg.flag)});
          break;
        case ActorMsgKind::kPollRequest:
          outbox.push_back(
              Envelope{SiteOf(static_cast<size_t>(slot)), kCoordinatorId,
                       OnPollRequest(static_cast<size_t>(slot), e.msg.epoch)});
          break;
        case ActorMsgKind::kThresholdUpdate:
          thresholds_[static_cast<size_t>(slot)] = e.msg.value;
          break;
        case ActorMsgKind::kShutdown:
          --live;
          break;
        default:
          break;
      }
    }
    // One batched reply per drained burst. Blocking is safe here: shard
    // inbox capacity covers every in-flight report + poll response of an
    // epoch (2 per owned site + headroom), and the shard coordinator is
    // always in its receive loop.
    if (!outbox.empty() && !transport->SendBatch(outbox)) {
      break;
    }
  }
}

void SiteEngine::RunFree(Transport* transport) {
  size_t shutdowns_pending = num_slots();
  std::vector<size_t> active(num_slots());
  std::iota(active.begin(), active.end(), size_t{0});
  std::vector<Envelope> inbox;
  std::vector<Envelope> pending;  ///< Unsent outbox suffix [pending_begin..).
  size_t pending_begin = 0;
  bool closed = false;

  auto flush = [&]() {
    if (pending_begin < pending.size()) {
      pending_begin += transport->TrySendBatch(pending, pending_begin, &closed);
    }
    if (pending_begin == pending.size()) {
      pending.clear();
      pending_begin = 0;
    } else if (pending_begin >= kCompactThreshold) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<ptrdiff_t>(pending_begin));
      pending_begin = 0;
    }
  };

  auto handle = [&](const Envelope& env) {
    const int slot = SlotOf(env.to);
    if (slot < 0) {
      return;
    }
    switch (env.msg.kind) {
      case ActorMsgKind::kPollRequest:
        pending.push_back(
            Envelope{SiteOf(static_cast<size_t>(slot)), kCoordinatorId,
                     OnPollRequest(static_cast<size_t>(slot), env.msg.epoch)});
        break;
      case ActorMsgKind::kThresholdUpdate:
        thresholds_[static_cast<size_t>(slot)] = env.msg.value;
        break;
      case ActorMsgKind::kShutdown:
        --shutdowns_pending;
        break;
      default:
        break;
    }
  };

  auto drain_controls = [&]() {
    inbox.clear();
    const size_t got = transport->TryRecvWorkerAll(config_.worker, &inbox);
    for (const Envelope& e : inbox) {
      handle(e);
    }
    return got;
  };

  // The key deadlock-freedom invariant at scale: this loop NEVER blocks
  // on a send. Alarms/dones/poll responses accumulate in `pending` and go
  // out through non-blocking TrySendBatch; when the coordinator inbox is
  // full we keep draining our own inbox (so a coordinator blocked fanning
  // polls at this worker always unblocks) and pause update production
  // once `pending` passes the high-water mark (backpressure without an
  // unbounded queue).
  while (!active.empty() && !closed) {
    drain_controls();
    flush();
    for (size_t i = 0; i < active.size() && !closed;) {
      const size_t slot = active[i];
      int64_t value = 0;
      bool alarmed = false;
      if (!NextUpdate(slot, &value, &alarmed)) {
        ActorMessage done;
        done.kind = ActorMsgKind::kSiteDone;
        done.epoch = updates_[slot];
        done.value = updates_[slot];
        pending.push_back(Envelope{SiteOf(slot), kCoordinatorId, done});
        active[i] = active.back();
        active.pop_back();
      } else {
        if (alarmed) {
          ActorMessage alarm;
          alarm.kind = ActorMsgKind::kAlarm;
          alarm.epoch = updates_[slot] - 1;
          alarm.value = value;
          pending.push_back(Envelope{SiteOf(slot), kCoordinatorId, alarm});
        }
        ++i;
      }
      while (!closed && pending.size() - pending_begin >= kOutboxCap) {
        const size_t backlog = pending.size() - pending_begin;
        const size_t got = drain_controls();
        flush();
        if (got == 0 && !pending.empty() &&
            pending.size() - pending_begin >= backlog) {
          std::this_thread::yield();
        }
      }
    }
  }

  // Workloads drained; flush the alarm/done tail and keep answering polls
  // until every owned site has been shut down (the coordinator may still
  // be resolving in-flight rounds).
  while (!closed && (shutdowns_pending > 0 || !pending.empty())) {
    flush();
    if (closed) {
      break;
    }
    if (pending.empty()) {
      if (shutdowns_pending == 0) {
        break;
      }
      // Nothing owed to the coordinator: block for control traffic, the
      // engine mirror of the actor loop's post-drain poll service.
      inbox.clear();
      if (transport->RecvWorkerAll(config_.worker, &inbox) == 0) {
        break;  // Closed and drained.
      }
      for (const Envelope& e : inbox) {
        handle(e);
      }
    } else if (drain_controls() == 0) {
      std::this_thread::yield();
    }
  }
}

}  // namespace dcv
