#include "runtime/coordinator.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "runtime/mailbox.h"
#include "runtime/plan.h"
#include "runtime/shard.h"
#include "runtime/shard_layout.h"

namespace dcv {

namespace {

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

CoordinatorActor::CoordinatorActor(Config config)
    : config_(std::move(config)), channel_(config_.faults) {}

Status CoordinatorActor::Init() {
  if (config_.num_sites < 1) {
    return InvalidArgumentError("coordinator needs at least one site");
  }
  if (static_cast<int>(config_.weights.size()) != config_.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  if (config_.protocol == RuntimeProtocol::kPolling &&
      config_.poll_period < 1) {
    return InvalidArgumentError("polling period must be >= 1");
  }
  DCV_RETURN_IF_ERROR(
      MakeShardLayout(config_.num_sites, config_.num_shards).status());
  if (config_.chaos.kind == ChaosKind::kKillShard ||
      config_.chaos.kind == ChaosKind::kReshard) {
    if (config_.num_shards < 2) {
      return InvalidArgumentError(
          std::string(ChaosKindName(config_.chaos.kind)) +
          " chaos needs a sharded coordinator (num_shards >= 2)");
    }
  }
  if (config_.chaos.kind == ChaosKind::kKillShard &&
      config_.heartbeat_timeout_ms <= 0) {
    return InvalidArgumentError(
        "kill-shard chaos needs heartbeat_timeout_ms > 0 so the root can "
        "detect the death");
  }
  if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
    if (static_cast<int>(config_.thresholds.size()) != config_.num_sites) {
      return InvalidArgumentError("thresholds size mismatch");
    }
    if (static_cast<int>(config_.domain_max.size()) != config_.num_sites) {
      return InvalidArgumentError("domain_max size mismatch");
    }
  }
  DCV_RETURN_IF_ERROR(channel_.Init(config_.num_sites, &counter_));
  channel_.SetObserver(config_.metrics, config_.recorder);
  if (config_.metrics != nullptr) {
    alarms_rx_ = config_.metrics->counter("runtime/coordinator/alarms");
    polls_ = config_.metrics->counter("runtime/coordinator/polls");
    epoch_us_ =
        config_.metrics->histogram("runtime/coordinator/epoch_us",
                                   obs::Histogram::DefaultLatencyBoundsUs());
    poll_round_us_ =
        config_.metrics->histogram("runtime/coordinator/poll_round_us",
                                   obs::Histogram::DefaultLatencyBoundsUs());
    // Epoch-scale bounds: lags are small integers (0 = resolved within the
    // trigger epoch), but a stalled poll under chaos can reach thousands.
    detection_lag_ = config_.metrics->histogram(
        "runtime/detection_lag_epochs",
        obs::Histogram::ExponentialBounds(1.0, 2.0, 16));
  }
  return OkStatus();
}

Status CoordinatorActor::PollRound(Transport* transport, int64_t epoch,
                                   std::vector<int64_t>* values) {
  DCV_OBS_COUNT(polls_, 1);
  ActorMessage request;
  request.kind = ActorMsgKind::kPollRequest;
  request.epoch = epoch;
  std::vector<Envelope> requests;
  requests.reserve(static_cast<size_t>(config_.num_sites));
  for (int i = 0; i < config_.num_sites; ++i) {
    requests.push_back(Envelope{kCoordinatorId, i, request});
  }
  if (!transport->SendBatch(requests)) {
    return InternalError("transport closed during poll round");
  }
  values->assign(static_cast<size_t>(config_.num_sites), 0);
  int pending = config_.num_sites;
  std::vector<Envelope> batch;
  while (pending > 0) {
    batch.clear();
    if (transport->RecvShardAll(0, &batch) == 0) {
      return InternalError("transport closed while collecting poll responses");
    }
    for (const Envelope& e : batch) {
      if (e.msg.kind != ActorMsgKind::kPollResponse) {
        return InternalError(std::string("unexpected ") +
                             std::string(ActorMsgKindName(e.msg.kind)) +
                             " during poll round");
      }
      (*values)[static_cast<size_t>(e.from)] = e.msg.value;
      --pending;
    }
  }
  return OkStatus();
}

Status CoordinatorActor::RunVirtual(Transport* transport, int64_t num_epochs,
                                    RuntimeResult* out) {
  if (config_.num_shards > 1) {
    return RunVirtualSharded(transport, num_epochs, out);
  }
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "virtual";
  out->epochs = num_epochs;
  out->detections.clear();
  out->detections.reserve(static_cast<size_t>(num_epochs));

  const int n = config_.num_sites;
  std::vector<char> alarmed(static_cast<size_t>(n), 0);
  std::vector<int64_t> alarm_value(static_cast<size_t>(n), 0);
  std::vector<int64_t> poll_values;
  std::vector<Envelope> starts;   ///< Reused per-epoch fan-out batch.
  std::vector<Envelope> reports;  ///< Reused per-epoch drain batch.
  starts.reserve(static_cast<size_t>(n));
  const ResolvedChaos chaos =
      ResolveChaos(config_.chaos, num_epochs, transport->num_workers());

  for (int64_t t = 0; t < num_epochs; ++t) {
    obs::ScopedTimer epoch_timer(epoch_us_);
    if (config_.chaos.kind == ChaosKind::kKillWorker &&
        t == chaos.fire_epoch) {
      // Sever one worker link mid-run. On the socket transport the worker
      // redials and the seq replay heals the stream, so the run (and the
      // Channel's RNG stream) is unaffected; transports without severable
      // links report Unimplemented, which is fine to ignore.
      Status severed = transport->InjectPeerFailure(chaos.target);
      (void)severed;
    }
    // Same call order as the lockstep runner + scheme, so the channel's RNG
    // stream (and thus every fault fate) is bit-identical.
    channel_.BeginEpoch(t);

    // Recovered sites missed threshold pushes while down: re-sync. The wire
    // send goes through the channel (charged + can itself be lost); the
    // transport push carries the ground truth only when the wire said the
    // update got through. It is sent before this epoch's kEpochStart, and
    // the mailbox is per-producer FIFO, so the site installs the threshold
    // before it evaluates — exactly the lockstep scheme, which re-syncs at
    // the top of OnEpoch.
    if (config_.protocol == RuntimeProtocol::kLocalThreshold &&
        !channel_.newly_recovered().empty()) {
      const std::vector<int> recovered = channel_.newly_recovered();
      for (int i : recovered) {
        SendStatus s = channel_.SendToSite(i, MessageType::kThresholdUpdate,
                                           /*reliable=*/true);
        if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
          ActorMessage update;
          update.kind = ActorMsgKind::kThresholdUpdate;
          update.epoch = t;
          update.value = config_.thresholds[static_cast<size_t>(i)];
          if (!transport->Send(Envelope{kCoordinatorId, i, update})) {
            return InternalError("transport closed during threshold re-sync");
          }
          DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kThresholdUpdate,
                        t, i, config_.thresholds[static_cast<size_t>(i)]);
        }
      }
      channel_.CountResync(static_cast<int64_t>(recovered.size()));
    }

    // Epoch barrier: every site observes its value and reports back whether
    // its local constraint fired. These are synchronization messages (they
    // model the passage of simulated time), not protocol traffic — the
    // protocol's alarms are replayed through the channel below. One
    // SendBatch per epoch fans the starts out; reports drain back in
    // bursts. Batching cannot perturb detections: alarms are replayed in
    // ascending site order after every report is in, so arrival order
    // never reaches the channel.
    starts.clear();
    for (int i = 0; i < n; ++i) {
      ActorMessage start;
      start.kind = ActorMsgKind::kEpochStart;
      start.epoch = t;
      start.flag = channel_.SiteUp(i);
      starts.push_back(Envelope{kCoordinatorId, i, start});
    }
    if (!transport->SendBatch(starts)) {
      return InternalError("transport closed during epoch start");
    }
    std::fill(alarmed.begin(), alarmed.end(), 0);
    int reports_pending = n;
    while (reports_pending > 0) {
      reports.clear();
      if (transport->RecvShardAll(0, &reports) == 0) {
        return InternalError("transport closed while collecting reports");
      }
      for (const Envelope& e : reports) {
        if (e.msg.kind != ActorMsgKind::kEpochReport || e.msg.epoch != t) {
          return InternalError("out-of-order message at epoch barrier");
        }
        alarmed[static_cast<size_t>(e.from)] = e.msg.flag ? 1 : 0;
        alarm_value[static_cast<size_t>(e.from)] = e.msg.value;
        --reports_pending;
      }
    }

    EpochDetection det;
    det.epoch = t;
    if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
      // Delayed alarms arriving now still trigger a poll; late reports of
      // other kinds are consumed and ignored (mirrors the lockstep scheme).
      std::vector<Channel::Arrival> stale_alarms =
          channel_.TakeArrivals(MessageType::kAlarm);
      channel_.TakeArrivals(MessageType::kFilterReport);

      int delivered_alarms = 0;
      for (int i = 0; i < n; ++i) {
        if (!alarmed[static_cast<size_t>(i)]) {
          continue;
        }
        ++det.num_alarms;
        DCV_OBS_COUNT(alarms_rx_, 1);
        SendStatus s =
            channel_.SendFromSite(i, MessageType::kAlarm, /*reliable=*/true,
                                  alarm_value[static_cast<size_t>(i)]);
        if (s == SendStatus::kDelivered) {
          ++delivered_alarms;
        }
      }
      if (delivered_alarms > 0 || !stale_alarms.empty()) {
        DCV_RETURN_IF_ERROR(PollRound(transport, t, &poll_values));
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              config_.domain_max);
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    } else {  // kPolling
      if (t % config_.poll_period == 0) {
        DCV_RETURN_IF_ERROR(PollRound(transport, t, &poll_values));
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              /*pessimistic=*/{});
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    }
    out->detections.push_back(det);
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  std::vector<Envelope> shutdowns;
  shutdowns.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shutdowns.push_back(Envelope{kCoordinatorId, i, shutdown});
  }
  transport->SendBatch(shutdowns);
  out->messages = counter_;
  out->reliability = channel_.stats();
  return OkStatus();
}

Status CoordinatorActor::RunFree(Transport* transport, RuntimeResult* out) {
  if (config_.num_shards > 1) {
    return RunFreeSharded(transport, out);
  }
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "free-running";

  const int n = config_.num_sites;
  out->site_updates.assign(static_cast<size_t>(n), 0);

  // Simulated time degrades to a watermark: the highest site-local update
  // index seen on any alarm. The channel only ever moves forward (crash and
  // partition windows still engage), never re-runs an epoch transition.
  int64_t watermark = -1;
  bool poll_outstanding = false;
  bool poll_dirty = false;  ///< Alarm arrived mid-round: re-poll after.
  int poll_pending = 0;
  std::vector<int64_t> poll_values(static_cast<size_t>(n), 0);
  int sites_done = 0;

  auto advance_watermark = [&](int64_t epoch) {
    if (epoch > watermark) {
      channel_.BeginEpoch(epoch);
      watermark = epoch;
    }
  };
  std::chrono::steady_clock::time_point round_start;
  int64_t poll_trigger_epoch = 0;  ///< Watermark when the round started.
  std::vector<Envelope> requests;  ///< Reused poll fan-out batch.
  requests.reserve(static_cast<size_t>(n));
  auto start_poll = [&]() -> Status {
    ActorMessage request;
    request.kind = ActorMsgKind::kPollRequest;
    request.epoch = std::max<int64_t>(watermark, 0);
    poll_trigger_epoch = request.epoch;
    requests.clear();
    for (int i = 0; i < n; ++i) {
      requests.push_back(Envelope{kCoordinatorId, i, request});
    }
    if (!transport->SendBatch(requests)) {
      return InternalError("transport closed during poll round");
    }
    std::fill(poll_values.begin(), poll_values.end(), 0);
    poll_pending = n;
    poll_outstanding = true;
    DCV_OBS_COUNT(polls_, 1);
    if (poll_round_us_ != nullptr) {
      round_start = std::chrono::steady_clock::now();
    }
    return OkStatus();
  };

  // Batch-drain the inbox: at scale the alarm stream arrives thousands per
  // wakeup; one PopAll per burst replaces one mutex round trip per alarm.
  std::vector<Envelope> burst;
  size_t burst_next = 0;
  auto next_envelope = [&](Envelope* out_env) {
    if (burst_next >= burst.size()) {
      burst.clear();
      burst_next = 0;
      if (transport->RecvShardAll(0, &burst) == 0) {
        return false;
      }
    }
    *out_env = burst[burst_next++];
    return true;
  };

  Envelope e;
  while (sites_done < n || poll_outstanding) {
    if (!next_envelope(&e)) {
      return InternalError("transport closed while sites were live");
    }
    switch (e.msg.kind) {
      case ActorMsgKind::kAlarm: {
        advance_watermark(e.msg.epoch);
        DCV_OBS_COUNT(alarms_rx_, 1);
        ++out->total_alarms;
        SendStatus s = channel_.SendFromSite(e.from, MessageType::kAlarm,
                                             /*reliable=*/true, e.msg.value);
        std::vector<Channel::Arrival> stale =
            channel_.TakeArrivals(MessageType::kAlarm);
        if (s == SendStatus::kDelivered || !stale.empty()) {
          // At most one outstanding round: a burst of alarms collapses into
          // one poll now plus one catch-up poll after it resolves.
          if (poll_outstanding) {
            poll_dirty = true;
          } else {
            DCV_RETURN_IF_ERROR(start_poll());
          }
        }
        break;
      }
      case ActorMsgKind::kPollResponse: {
        if (!poll_outstanding) {
          break;  // Response to a round we already resolved; ignore.
        }
        poll_values[static_cast<size_t>(e.from)] = e.msg.value;
        if (--poll_pending == 0) {
          PollOutcome poll = channel_.PollSites(
              poll_values, config_.weights,
              config_.protocol == RuntimeProtocol::kLocalThreshold
                  ? config_.domain_max
                  : std::vector<int64_t>{});
          ++out->polled_epochs;
          if (poll.weighted_sum > config_.global_threshold) {
            ++out->violations_flagged;
          }
          poll_outstanding = false;
          if (poll_round_us_ != nullptr) {
            poll_round_us_->Observe(static_cast<double>(ElapsedUs(round_start)));
          }
          if (detection_lag_ != nullptr) {
            // Lag in watermark epochs between the triggering alarm and the
            // round resolving (the lockstep ground truth detects at the
            // trigger epoch itself).
            detection_lag_->Observe(static_cast<double>(std::max<int64_t>(
                0, std::max<int64_t>(watermark, 0) - poll_trigger_epoch)));
          }
          if (poll_dirty) {
            poll_dirty = false;
            DCV_RETURN_IF_ERROR(start_poll());
          }
        }
        break;
      }
      case ActorMsgKind::kSiteDone: {
        out->site_updates[static_cast<size_t>(e.from)] = e.msg.value;
        ++sites_done;
        break;
      }
      default:
        return InternalError(std::string("unexpected ") +
                             std::string(ActorMsgKindName(e.msg.kind)) +
                             " in free-running mode");
    }
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  std::vector<Envelope> shutdowns;
  shutdowns.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shutdowns.push_back(Envelope{kCoordinatorId, i, shutdown});
  }
  transport->SendBatch(shutdowns);
  out->messages = counter_;
  out->reliability = channel_.stats();
  for (int64_t u : out->site_updates) {
    out->total_updates += u;
  }
  return OkStatus();
}

Status CoordinatorActor::RunVirtualSharded(Transport* transport,
                                           int64_t num_epochs,
                                           RuntimeResult* out) {
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "virtual";
  out->epochs = num_epochs;
  out->detections.clear();
  out->detections.reserve(static_cast<size_t>(num_epochs));

  const int n = config_.num_sites;
  const int k = config_.num_shards;
  DCV_ASSIGN_OR_RETURN(ShardLayout layout, MakeShardLayout(n, k));
  if (transport->num_shards() != k) {
    return InvalidArgumentError(
        "transport shard count does not match coordinator num_shards");
  }
  const ResolvedChaos chaos = ResolveChaos(
      config_.chaos, num_epochs,
      config_.chaos.kind == ChaosKind::kKillWorker ? transport->num_workers()
                                                   : k);

  // Spawn the shard coordinators. Virtual-time shards are channel-free
  // relays: they run the epoch barrier and poll fan-out for their site
  // range and feed ground truth back; every Channel call stays on this
  // thread in flat-coordinator order, so the run is bit-identical to the
  // lockstep simulator for any k.
  const LocalPlan plan{config_.thresholds, config_.domain_max};
  Mailbox<RootMsg> root_box(static_cast<size_t>(4 * k + 16));
  std::vector<std::unique_ptr<Mailbox<ShardCmd>>> cmd_boxes;
  std::vector<std::thread> shards;
  cmd_boxes.reserve(static_cast<size_t>(k));
  shards.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    cmd_boxes.push_back(std::make_unique<Mailbox<ShardCmd>>(4));
  }
  for (int s = 0; s < k; ++s) {
    ShardContext ctx;
    ctx.shard = s;
    ctx.layout = layout;
    ctx.transport = transport;
    ctx.cmds = cmd_boxes[static_cast<size_t>(s)].get();
    ctx.to_root = &root_box;
    ctx.plan = SliceForShard(plan, layout, s);
    ctx.protocol = config_.protocol;
    if (config_.chaos.kind == ChaosKind::kKillShard && s == chaos.target) {
      ctx.die_at_epoch = chaos.fire_epoch;
    }
    shards.emplace_back(RunShardVirtual, std::move(ctx));
  }

  // Abort path: close the transport and the command boxes so every shard
  // (blocked on either) wakes and exits, then join before returning.
  auto abort_run = [&](Status status) {
    transport->Shutdown();
    for (auto& box : cmd_boxes) {
      box->Close();
    }
    for (std::thread& th : shards) {
      th.join();
    }
    return status;
  };

  // Recovery state: a dead shard's sites are re-adopted by this thread
  // (direct attachment) — the root re-executes the shard's pending command
  // from its own copy and runs every later command for that range inline.
  // The shard legs are the exact code the shard thread runs, and the plan
  // re-slices from the root's full copy, so the sites see one producer and
  // identical traffic; the Channel call sequence never changes.
  std::vector<char> dead(static_cast<size_t>(k), 0);
  std::vector<ShardCmd> pending_cmds(static_cast<size_t>(k));

  // Collects one partial per live shard for the current round; arrival
  // order across shards is free, content is not. A heartbeat timeout with
  // nothing delivered marks the still-missing shards dead and re-executes
  // their pending command inline.
  std::vector<std::vector<std::pair<int, int64_t>>> partials(
      static_cast<size_t>(k));
  std::vector<RootMsg> root_batch;
  auto recover = [&](int s, RootMsg::Kind want) -> Status {
    const auto t0 = std::chrono::steady_clock::now();
    dead[static_cast<size_t>(s)] = 1;
    Status st =
        want == RootMsg::Kind::kEpochPartial
            ? ShardEpochLeg(transport, layout, s,
                            SliceForShard(plan, layout, s),
                            pending_cmds[static_cast<size_t>(s)],
                            &partials[static_cast<size_t>(s)])
            : ShardPollLeg(transport, layout, s,
                           pending_cmds[static_cast<size_t>(s)].epoch,
                           &partials[static_cast<size_t>(s)]);
    ++out->shard_recoveries;
    out->recovery_ms = std::max(
        out->recovery_ms, static_cast<double>(ElapsedUs(t0)) / 1000.0);
    return st;
  };
  auto collect = [&](RootMsg::Kind want, int64_t epoch) -> Status {
    std::vector<char> got(static_cast<size_t>(k), 0);
    int expected = 0;
    for (int s = 0; s < k; ++s) {
      if (dead[static_cast<size_t>(s)]) {
        got[static_cast<size_t>(s)] = 1;  // Already executed inline.
      } else {
        ++expected;
      }
    }
    int received = 0;
    while (received < expected) {
      root_batch.clear();
      bool timed_out = false;
      const size_t got_msgs =
          config_.heartbeat_timeout_ms > 0
              ? root_box.PopAllFor(&root_batch, config_.heartbeat_timeout_ms,
                                   &timed_out)
              : root_box.PopAll(&root_batch);
      if (got_msgs == 0) {
        if (!timed_out) {
          return InternalError(
              "root mailbox closed while collecting partials");
        }
        // Heartbeat timeout: every live shard still missing its partial is
        // presumed dead (a live shard's barrier completes well inside the
        // timeout); re-adopt its sites and run the leg here.
        for (int s = 0; s < k; ++s) {
          if (got[static_cast<size_t>(s)]) {
            continue;
          }
          if (config_.recorder != nullptr) {
            obs::TraceEvent ev;
            ev.kind = obs::TraceEventKind::kShardDeath;
            ev.epoch = epoch;
            ev.shard = s;
            ev.value = s;
            config_.recorder->Record(ev);
          }
          DCV_RETURN_IF_ERROR(recover(s, want));
          got[static_cast<size_t>(s)] = 1;
          --expected;
        }
        continue;
      }
      for (RootMsg& msg : root_batch) {
        if (msg.kind == RootMsg::Kind::kError) {
          return msg.status;
        }
        if (msg.kind != want || msg.epoch != epoch) {
          return InternalError("out-of-order shard partial");
        }
        partials[static_cast<size_t>(msg.shard)] = std::move(msg.entries);
        got[static_cast<size_t>(msg.shard)] = 1;
        ++received;
      }
    }
    return OkStatus();
  };

  std::vector<int64_t> poll_values(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> resync(static_cast<size_t>(k));
  auto poll_shards = [&](int64_t t) -> Status {
    DCV_OBS_COUNT(polls_, 1);
    for (int s = 0; s < k; ++s) {
      ShardCmd cmd;
      cmd.kind = ShardCmd::Kind::kPoll;
      cmd.epoch = t;
      pending_cmds[static_cast<size_t>(s)] = cmd;
      if (dead[static_cast<size_t>(s)]) {
        continue;  // Run inline below, after the live shards are going.
      }
      if (!cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd))) {
        return InternalError("shard command box closed");
      }
    }
    for (int s = 0; s < k; ++s) {
      if (dead[static_cast<size_t>(s)]) {
        DCV_RETURN_IF_ERROR(
            ShardPollLeg(transport, layout, s, t,
                         &partials[static_cast<size_t>(s)]));
      }
    }
    DCV_RETURN_IF_ERROR(collect(RootMsg::Kind::kPollPartial, t));
    for (int s = 0; s < k; ++s) {
      for (const auto& [site, value] : partials[static_cast<size_t>(s)]) {
        poll_values[static_cast<size_t>(site)] = value;
      }
    }
    return OkStatus();
  };

  for (int64_t t = 0; t < num_epochs; ++t) {
    obs::ScopedTimer epoch_timer(epoch_us_);
    if (config_.chaos.kind == ChaosKind::kKillWorker &&
        t == chaos.fire_epoch) {
      Status severed = transport->InjectPeerFailure(chaos.target);
      (void)severed;  // Unimplemented on link-free transports; fine.
    }
    if (config_.chaos.kind == ChaosKind::kReshard && t == chaos.fire_epoch) {
      // Reshard at the epoch boundary: no data-plane message is in flight
      // (last epoch's barrier closed, this one has not started), so the
      // routing swap cannot strand anything. UpdateLayout fences on every
      // worker's ack; the FIFO command boxes make each shard adopt the new
      // range strictly before its next epoch command. Poll values, partial
      // order, and Channel calls are range-independent, so detections stay
      // bit-identical.
      ShardLayout next = RotateLayout(layout);
      if (Status st = transport->UpdateLayout(next); !st.ok()) {
        return abort_run(st);
      }
      layout = next;
      ++out->reshards;
      if (config_.recorder != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::TraceEventKind::kLayoutRotation;
        ev.epoch = t;
        ev.value = static_cast<int64_t>(next.version);
        config_.recorder->Record(ev);
      }
      for (int s = 0; s < k; ++s) {
        if (dead[static_cast<size_t>(s)]) {
          continue;  // Inline legs read the root's `layout` directly.
        }
        ShardCmd cmd;
        cmd.kind = ShardCmd::Kind::kLayout;
        cmd.layout = layout;
        cmd.plan = SliceForShard(plan, layout, s);
        if (!cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd))) {
          return abort_run(InternalError("shard command box closed"));
        }
      }
    }
    // The root replays the flat coordinator's channel-call sequence
    // verbatim: BeginEpoch, re-sync sends, (barrier), stale arrivals,
    // alarm replays in ascending site order, then the poll. Shards only
    // move ground truth, so the RNG stream never diverges.
    channel_.BeginEpoch(t);

    for (auto& r : resync) {
      r.clear();
    }
    if (config_.protocol == RuntimeProtocol::kLocalThreshold &&
        !channel_.newly_recovered().empty()) {
      const std::vector<int> recovered = channel_.newly_recovered();
      for (int i : recovered) {
        SendStatus s = channel_.SendToSite(i, MessageType::kThresholdUpdate,
                                           /*reliable=*/true);
        if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
          // The owning shard pushes the transport message (before its
          // kEpochStart, preserving the per-site FIFO); the wire charge
          // already happened here.
          resync[static_cast<size_t>(layout.ShardOf(i))].push_back(i);
          DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kThresholdUpdate,
                        t, i, config_.thresholds[static_cast<size_t>(i)]);
        }
      }
      channel_.CountResync(static_cast<int64_t>(recovered.size()));
    }

    for (int s = 0; s < k; ++s) {
      ShardCmd cmd;
      cmd.kind = ShardCmd::Kind::kEpoch;
      cmd.epoch = t;
      const int start = layout.ShardStart(s);
      const int size = layout.ShardSize(s);
      cmd.up.resize(static_cast<size_t>(size));
      for (int i = 0; i < size; ++i) {
        cmd.up[static_cast<size_t>(i)] = channel_.SiteUp(start + i) ? 1 : 0;
      }
      cmd.resync_sites = std::move(resync[static_cast<size_t>(s)]);
      // Keep a copy: if the shard dies holding this command, the root
      // re-executes it from here.
      pending_cmds[static_cast<size_t>(s)] = cmd;
      if (dead[static_cast<size_t>(s)]) {
        continue;  // Run inline below, once the live shards are going.
      }
      if (!cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd))) {
        return abort_run(InternalError("shard command box closed"));
      }
    }
    for (int s = 0; s < k; ++s) {
      if (dead[static_cast<size_t>(s)]) {
        if (Status st = ShardEpochLeg(transport, layout, s,
                                      SliceForShard(plan, layout, s),
                                      pending_cmds[static_cast<size_t>(s)],
                                      &partials[static_cast<size_t>(s)]);
            !st.ok()) {
          return abort_run(st);
        }
      }
    }
    if (Status st = collect(RootMsg::Kind::kEpochPartial, t); !st.ok()) {
      return abort_run(st);
    }

    EpochDetection det;
    det.epoch = t;
    if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
      std::vector<Channel::Arrival> stale_alarms =
          channel_.TakeArrivals(MessageType::kAlarm);
      channel_.TakeArrivals(MessageType::kFilterReport);

      int delivered_alarms = 0;
      // Shards are contiguous and entries ascend within a shard, so this
      // double loop visits alarmed sites in ascending global order — the
      // flat coordinator's (and the lockstep scheme's) replay order.
      for (int s = 0; s < k; ++s) {
        for (const auto& [site, value] : partials[static_cast<size_t>(s)]) {
          ++det.num_alarms;
          DCV_OBS_COUNT(alarms_rx_, 1);
          SendStatus st = channel_.SendFromSite(site, MessageType::kAlarm,
                                                /*reliable=*/true, value);
          if (st == SendStatus::kDelivered) {
            ++delivered_alarms;
          }
        }
      }
      if (delivered_alarms > 0 || !stale_alarms.empty()) {
        if (Status st = poll_shards(t); !st.ok()) {
          return abort_run(st);
        }
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              config_.domain_max);
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    } else {  // kPolling
      if (t % config_.poll_period == 0) {
        if (Status st = poll_shards(t); !st.ok()) {
          return abort_run(st);
        }
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              /*pessimistic=*/{});
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    }
    out->detections.push_back(det);
  }

  for (int s = 0; s < k; ++s) {
    if (dead[static_cast<size_t>(s)]) {
      // Re-adopted sites get their shutdown from the root directly.
      ShardShutdownLeg(transport, layout, s);
      continue;
    }
    ShardCmd cmd;
    cmd.kind = ShardCmd::Kind::kShutdown;
    cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd));
  }
  for (auto& box : cmd_boxes) {
    box->Close();
  }
  for (std::thread& th : shards) {
    th.join();
  }
  out->messages = counter_;
  out->reliability = channel_.stats();
  return OkStatus();
}

Status CoordinatorActor::RunFreeSharded(Transport* transport,
                                        RuntimeResult* out) {
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "free-running";

  const int n = config_.num_sites;
  const int k = config_.num_shards;
  DCV_ASSIGN_OR_RETURN(ShardLayout layout, MakeShardLayout(n, k));
  if (transport->num_shards() != k) {
    return InvalidArgumentError(
        "transport shard count does not match coordinator num_shards");
  }
  out->site_updates.assign(static_cast<size_t>(n), 0);
  const ResolvedChaos chaos = ResolveChaos(config_.chaos, /*num_epochs=*/0, k);

  // Free-running shards own the data plane for their slice: alarm intake,
  // a private channel over shard-local ids (SliceFaultSpec), and the
  // per-shard leg of every poll round, aggregated down to one partial
  // SUM/MIN/MAX message. The root only routes round lifecycles — O(k)
  // messages per round — and merges the per-shard accounting at exit.
  const LocalPlan plan{config_.thresholds, config_.domain_max};
  Mailbox<RootMsg> root_box(static_cast<size_t>(4 * k + 16));
  std::vector<std::thread> shards;
  shards.reserve(static_cast<size_t>(k));
  auto make_ctx = [&](int s, int64_t die_after_batches) {
    ShardContext ctx;
    ctx.shard = s;
    ctx.layout = layout;
    ctx.transport = transport;
    ctx.to_root = &root_box;
    ctx.plan = SliceForShard(plan, layout, s);
    ctx.protocol = config_.protocol;
    const int start = layout.ShardStart(s);
    const int size = layout.ShardSize(s);
    ctx.weights.assign(
        config_.weights.begin() + start,
        config_.weights.begin() + start + size);
    ctx.faults = SliceFaultSpec(config_.faults, layout, s);
    ctx.metrics = config_.metrics;
    ctx.recorder = config_.recorder;
    ctx.alarms_rx = alarms_rx_;
    ctx.die_after_batches = die_after_batches;
    return ctx;
  };
  for (int s = 0; s < k; ++s) {
    shards.emplace_back(
        RunShardFree,
        make_ctx(s, config_.chaos.kind == ChaosKind::kKillShard &&
                            s == chaos.target
                        ? chaos.fire_after_batches
                        : -1));
  }

  obs::Gauge* poll_min_gauge =
      config_.metrics != nullptr
          ? config_.metrics->gauge("runtime/coordinator/poll_min")
          : nullptr;
  obs::Gauge* poll_max_gauge =
      config_.metrics != nullptr
          ? config_.metrics->gauge("runtime/coordinator/poll_max")
          : nullptr;

  bool poll_outstanding = false;
  bool poll_dirty = false;
  int partials_pending = 0;
  // Max shard watermark seen on alarm notices / poll partials; the lag
  // histogram measures how far it moved between a round's trigger and its
  // resolution.
  int64_t watermark = 0;
  int64_t round_trigger_epoch = 0;
  int64_t round_sum = 0;
  int64_t round_min = 0;
  int64_t round_max = 0;
  int sites_done = 0;
  int shard_exits = 0;
  std::vector<char> partial_from(static_cast<size_t>(k), 0);
  std::vector<char> exited(static_cast<size_t>(k), 0);
  std::vector<char> respawned(static_cast<size_t>(k), 0);
  int64_t probe_seq = 0;
  std::vector<char>* probe_beats = nullptr;
  int probe_beats_seen = 0;
  Status run_error = OkStatus();
  std::chrono::steady_clock::time_point round_start;

  // With failure detection on, the root must never block pushing into a
  // shard inbox: a dead shard's inbox stays full of blocked site updates,
  // and a blocking push there would wedge the root — and with it the
  // probe/respawn machinery — forever. Commands that do not fit are kept
  // here (per-shard FIFO, so command order is preserved) and retried on
  // every loop iteration; a replacement shard drains the inbox and the
  // backlog follows. Without detection the historical blocking send is
  // kept: every shard is assumed to stay in its receive loop.
  const bool detect = config_.heartbeat_timeout_ms > 0;
  std::vector<std::deque<ActorMessage>> cmd_backlog(static_cast<size_t>(k));
  auto send_cmd = [&](int s, const ActorMessage& m) {
    const Envelope env{kCoordinatorId, kCoordinatorId, m};
    if (!detect) {
      if (!transport->SendToShard(s, env) && run_error.ok()) {
        run_error = InternalError("transport closed during a shard command");
      }
      return;
    }
    auto& backlog = cmd_backlog[static_cast<size_t>(s)];
    if (backlog.empty() && transport->TrySendToShard(s, env)) {
      return;
    }
    backlog.push_back(m);
  };
  auto flush_cmds = [&]() {
    if (!detect) {
      return;
    }
    for (int s = 0; s < k; ++s) {
      auto& backlog = cmd_backlog[static_cast<size_t>(s)];
      while (!backlog.empty() &&
             transport->TrySendToShard(
                 s, Envelope{kCoordinatorId, kCoordinatorId,
                             backlog.front()})) {
        backlog.pop_front();
      }
    }
  };

  auto start_round = [&]() {
    // Kick every shard's poll leg. The command is an envelope from
    // kCoordinatorId injected straight into the shard inbox (SendToShard
    // never crosses a wire), so each shard still blocks on one source.
    ActorMessage kick;
    kick.kind = ActorMsgKind::kPollRequest;
    for (int s = 0; s < k; ++s) {
      send_cmd(s, kick);
    }
    partials_pending = k;
    round_trigger_epoch = watermark;
    round_sum = 0;
    round_min = std::numeric_limits<int64_t>::max();
    round_max = std::numeric_limits<int64_t>::min();
    std::fill(partial_from.begin(), partial_from.end(), 0);
    poll_outstanding = true;
    DCV_OBS_COUNT(polls_, 1);
    if (poll_round_us_ != nullptr) {
      round_start = std::chrono::steady_clock::now();
    }
  };
  auto merge_exit = [&](RootMsg& msg) {
    // A respawn that raced a live-but-slow shard leaves two threads
    // serving the same shard id; both report kShardExit. Their stats are
    // disjoint halves of the shard's work — merge both — but the shard
    // counts as exited once.
    if (!exited[static_cast<size_t>(msg.shard)]) {
      ++shard_exits;
      exited[static_cast<size_t>(msg.shard)] = 1;
    }
    out->total_alarms += msg.alarms;
    counter_.Merge(msg.messages);
    out->reliability = out->reliability + msg.reliability;
    if (!msg.status.ok() && run_error.ok()) {
      run_error = msg.status;
    }
  };
  bool draining = false;  ///< Post-kShutdown: late messages are expected.
  auto handle = [&](RootMsg& msg) {
    // During a probe, ANY traffic from a shard proves it alive — the root
    // box was empty when the silence was declared, so whatever arrives now
    // was pushed inside the probe window. This matters when the ping
    // itself is stuck in the command backlog behind a full inbox: a live
    // shard grinding through that backlog must not get a twin respawned.
    if (probe_beats != nullptr && msg.shard >= 0 && msg.shard < k &&
        !(*probe_beats)[static_cast<size_t>(msg.shard)]) {
      (*probe_beats)[static_cast<size_t>(msg.shard)] = 1;
      ++probe_beats_seen;
    }
    if ((msg.kind == RootMsg::Kind::kAlarmNotice ||
         msg.kind == RootMsg::Kind::kPollPartial) &&
        msg.epoch > watermark) {
      watermark = msg.epoch;
    }
    switch (msg.kind) {
      case RootMsg::Kind::kAlarmNotice: {
        if (draining) {
          break;
        }
        // At most one outstanding global round, exactly like the flat
        // coordinator: notices during a round collapse into one catch-up.
        if (poll_outstanding) {
          poll_dirty = true;
        } else {
          start_round();
        }
        break;
      }
      case RootMsg::Kind::kPollPartial: {
        if (draining || !poll_outstanding) {
          break;
        }
        partial_from[static_cast<size_t>(msg.shard)] = 1;
        round_sum += msg.partial_sum;
        round_min = std::min(round_min, msg.partial_min);
        round_max = std::max(round_max, msg.partial_max);
        if (--partials_pending == 0) {
          ++out->polled_epochs;
          if (round_sum > config_.global_threshold) {
            ++out->violations_flagged;
          }
          poll_outstanding = false;
          if (poll_round_us_ != nullptr) {
            poll_round_us_->Observe(
                static_cast<double>(ElapsedUs(round_start)));
          }
          if (detection_lag_ != nullptr) {
            detection_lag_->Observe(static_cast<double>(
                std::max<int64_t>(0, watermark - round_trigger_epoch)));
          }
          if (poll_min_gauge != nullptr) {
            poll_min_gauge->Set(static_cast<double>(round_min));
            poll_max_gauge->Set(static_cast<double>(round_max));
          }
          if (poll_dirty) {
            poll_dirty = false;
            start_round();
          }
        }
        break;
      }
      case RootMsg::Kind::kSiteDone: {
        // Relayed per site, so a shard death between relays loses nothing:
        // the already-relayed sites stay counted and the replacement shard
        // relays the rest from the same inbox.
        for (const auto& [site, updates] : msg.entries) {
          out->site_updates[static_cast<size_t>(site)] = updates;
          ++sites_done;
        }
        break;
      }
      case RootMsg::Kind::kHeartbeat: {
        break;  // Liveness was credited by the any-traffic marking above.
      }
      case RootMsg::Kind::kShardExit: {
        // Shards only exit unprompted when the transport died under
        // them; surface that as the run error but keep their stats.
        merge_exit(msg);
        if (!draining && run_error.ok()) {
          run_error = InternalError("shard exited while sites were live");
        }
        break;
      }
      case RootMsg::Kind::kError: {
        run_error = msg.status;
        break;
      }
      default:
        break;  // Virtual-mode partials cannot appear here.
    }
  };

  std::vector<RootMsg> batch;
  // Liveness probe after a silent stretch: ping every shard; the silent
  // ones are dead — respawn a replacement that drains the SAME shard
  // inbox, so every queued alarm / response / site-done survives the
  // crash (bounded mailboxes mean nothing was dropped, senders just
  // blocked). Replacement channels restart from the plan's fault slice.
  auto probe_and_respawn = [&]() {
    ++probe_seq;
    std::vector<char> beats(static_cast<size_t>(k), 0);
    probe_beats = &beats;
    probe_beats_seen = 0;
    const auto probe_start = std::chrono::steady_clock::now();
    ActorMessage ping;
    ping.kind = ActorMsgKind::kPing;
    ping.epoch = probe_seq;
    for (int s = 0; s < k; ++s) {
      send_cmd(s, ping);
    }
    const auto deadline =
        probe_start + std::chrono::milliseconds(config_.heartbeat_timeout_ms);
    while (probe_beats_seen < k && run_error.ok()) {
      flush_cmds();
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        break;
      }
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      batch.clear();
      bool timed_out = false;
      if (root_box.PopAllFor(&batch, std::max<int64_t>(1, remaining_ms),
                             &timed_out) == 0) {
        if (timed_out) {
          break;
        }
        run_error = InternalError("root mailbox closed during probe");
        break;
      }
      for (RootMsg& msg : batch) {
        handle(msg);
      }
    }
    probe_beats = nullptr;
    for (int s = 0; s < k && run_error.ok(); ++s) {
      if (beats[static_cast<size_t>(s)] || exited[static_cast<size_t>(s)]) {
        continue;
      }
      if (respawned[static_cast<size_t>(s)]) {
        run_error = InternalError(
            "shard " + std::to_string(s) +
            " went silent again after a respawn; giving up");
        break;
      }
      respawned[static_cast<size_t>(s)] = 1;
      if (config_.recorder != nullptr) {
        obs::TraceEvent death;
        death.kind = obs::TraceEventKind::kShardDeath;
        death.epoch = watermark;
        death.shard = s;
        death.value = s;
        config_.recorder->Record(death);
      }
      shards.emplace_back(RunShardFree, make_ctx(s, /*die_after_batches=*/-1));
      if (config_.recorder != nullptr) {
        obs::TraceEvent respawn;
        respawn.kind = obs::TraceEventKind::kShardRespawn;
        respawn.epoch = watermark;
        respawn.shard = s;
        respawn.value = s;
        config_.recorder->Record(respawn);
      }
      ++out->shard_recoveries;
      out->recovery_ms =
          std::max(out->recovery_ms,
                   static_cast<double>(ElapsedUs(probe_start)) / 1000.0);
      if (poll_outstanding && !partial_from[static_cast<size_t>(s)]) {
        // The round the dead shard was serving would hang forever;
        // re-kick the replacement's leg (fresh kPollRequest — stale
        // responses already queued are ignored by the replacement).
        ActorMessage kick;
        kick.kind = ActorMsgKind::kPollRequest;
        send_cmd(s, kick);
      }
    }
  };

  while ((sites_done < n || poll_outstanding) && run_error.ok()) {
    flush_cmds();
    batch.clear();
    bool timed_out = false;
    const size_t got =
        detect ? root_box.PopAllFor(&batch, config_.heartbeat_timeout_ms,
                                    &timed_out)
               : root_box.PopAll(&batch);
    if (got == 0) {
      if (timed_out) {
        probe_and_respawn();
        continue;
      }
      run_error = InternalError("root mailbox closed while shards were live");
      break;
    }
    for (RootMsg& msg : batch) {
      if (!run_error.ok()) {
        break;
      }
      handle(msg);
    }
  }

  // Shutdown: command every shard to stop; each forwards kShutdown to its
  // sites and reports final accounting. Exits are counted (not joined-for)
  // so a shard blocked pushing to the root box can always drain. A shard
  // that died between the main loop and its kShutdown still gets one
  // respawn (the replacement finds the queued kShutdown and exits).
  draining = true;
  ActorMessage stop;
  stop.kind = ActorMsgKind::kShutdown;
  for (int s = 0; s < k; ++s) {
    send_cmd(s, stop);
    if (respawned[static_cast<size_t>(s)]) {
      // If the respawn raced a live-but-slow original, two threads serve
      // this shard id and each needs a stop; a surplus stop to a single
      // survivor just sits unconsumed in the inbox.
      send_cmd(s, stop);
    }
  }
  while (shard_exits < k) {
    flush_cmds();
    batch.clear();
    bool timed_out = false;
    const size_t got =
        detect ? root_box.PopAllFor(&batch, config_.heartbeat_timeout_ms,
                                    &timed_out)
               : root_box.PopAll(&batch);
    if (got == 0) {
      if (!timed_out) {
        break;
      }
      bool acted = false;
      for (int s = 0; s < k; ++s) {
        if (!exited[static_cast<size_t>(s)] &&
            !respawned[static_cast<size_t>(s)]) {
          respawned[static_cast<size_t>(s)] = 1;
          shards.emplace_back(RunShardFree,
                              make_ctx(s, /*die_after_batches=*/-1));
          ++out->shard_recoveries;
          // The original's stop is already queued or backlogged; one more
          // covers the twin in case the original was merely slow.
          send_cmd(s, stop);
          acted = true;
        }
      }
      if (!acted) {
        if (run_error.ok()) {
          run_error =
              InternalError("timed out waiting for shard exits at shutdown");
        }
        break;
      }
      continue;
    }
    for (RootMsg& msg : batch) {
      if (msg.kind == RootMsg::Kind::kShardExit) {
        merge_exit(msg);
      }
      // Notices/partials that raced with shutdown are dropped.
    }
  }
  for (std::thread& th : shards) {
    th.join();
  }

  out->messages = counter_;
  for (int64_t u : out->site_updates) {
    out->total_updates += u;
  }
  return run_error;
}

}  // namespace dcv
