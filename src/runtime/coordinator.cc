#include "runtime/coordinator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "runtime/mailbox.h"
#include "runtime/plan.h"
#include "runtime/shard.h"
#include "runtime/shard_layout.h"

namespace dcv {

namespace {

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

CoordinatorActor::CoordinatorActor(Config config)
    : config_(std::move(config)), channel_(config_.faults) {}

Status CoordinatorActor::Init() {
  if (config_.num_sites < 1) {
    return InvalidArgumentError("coordinator needs at least one site");
  }
  if (static_cast<int>(config_.weights.size()) != config_.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  if (config_.protocol == RuntimeProtocol::kPolling &&
      config_.poll_period < 1) {
    return InvalidArgumentError("polling period must be >= 1");
  }
  DCV_RETURN_IF_ERROR(
      MakeShardLayout(config_.num_sites, config_.num_shards).status());
  if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
    if (static_cast<int>(config_.thresholds.size()) != config_.num_sites) {
      return InvalidArgumentError("thresholds size mismatch");
    }
    if (static_cast<int>(config_.domain_max.size()) != config_.num_sites) {
      return InvalidArgumentError("domain_max size mismatch");
    }
  }
  DCV_RETURN_IF_ERROR(channel_.Init(config_.num_sites, &counter_));
  channel_.SetObserver(config_.metrics, config_.recorder);
  if (config_.metrics != nullptr) {
    alarms_rx_ = config_.metrics->counter("runtime/coordinator/alarms");
    polls_ = config_.metrics->counter("runtime/coordinator/polls");
    epoch_us_ =
        config_.metrics->histogram("runtime/coordinator/epoch_us",
                                   obs::Histogram::DefaultLatencyBoundsUs());
    poll_round_us_ =
        config_.metrics->histogram("runtime/coordinator/poll_round_us",
                                   obs::Histogram::DefaultLatencyBoundsUs());
  }
  return OkStatus();
}

Status CoordinatorActor::PollRound(Transport* transport, int64_t epoch,
                                   std::vector<int64_t>* values) {
  DCV_OBS_COUNT(polls_, 1);
  ActorMessage request;
  request.kind = ActorMsgKind::kPollRequest;
  request.epoch = epoch;
  for (int i = 0; i < config_.num_sites; ++i) {
    if (!transport->Send(Envelope{kCoordinatorId, i, request})) {
      return InternalError("transport closed during poll round");
    }
  }
  values->assign(static_cast<size_t>(config_.num_sites), 0);
  int pending = config_.num_sites;
  Envelope e;
  while (pending > 0) {
    if (!transport->RecvCoordinator(&e)) {
      return InternalError("transport closed while collecting poll responses");
    }
    if (e.msg.kind != ActorMsgKind::kPollResponse) {
      return InternalError(std::string("unexpected ") +
                           std::string(ActorMsgKindName(e.msg.kind)) +
                           " during poll round");
    }
    (*values)[static_cast<size_t>(e.from)] = e.msg.value;
    --pending;
  }
  return OkStatus();
}

Status CoordinatorActor::RunVirtual(Transport* transport, int64_t num_epochs,
                                    RuntimeResult* out) {
  if (config_.num_shards > 1) {
    return RunVirtualSharded(transport, num_epochs, out);
  }
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "virtual";
  out->epochs = num_epochs;
  out->detections.clear();
  out->detections.reserve(static_cast<size_t>(num_epochs));

  const int n = config_.num_sites;
  std::vector<char> alarmed(static_cast<size_t>(n), 0);
  std::vector<int64_t> alarm_value(static_cast<size_t>(n), 0);
  std::vector<int64_t> poll_values;

  for (int64_t t = 0; t < num_epochs; ++t) {
    obs::ScopedTimer epoch_timer(epoch_us_);
    // Same call order as the lockstep runner + scheme, so the channel's RNG
    // stream (and thus every fault fate) is bit-identical.
    channel_.BeginEpoch(t);

    // Recovered sites missed threshold pushes while down: re-sync. The wire
    // send goes through the channel (charged + can itself be lost); the
    // transport push carries the ground truth only when the wire said the
    // update got through. It is sent before this epoch's kEpochStart, and
    // the mailbox is per-producer FIFO, so the site installs the threshold
    // before it evaluates — exactly the lockstep scheme, which re-syncs at
    // the top of OnEpoch.
    if (config_.protocol == RuntimeProtocol::kLocalThreshold &&
        !channel_.newly_recovered().empty()) {
      const std::vector<int> recovered = channel_.newly_recovered();
      for (int i : recovered) {
        SendStatus s = channel_.SendToSite(i, MessageType::kThresholdUpdate,
                                           /*reliable=*/true);
        if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
          ActorMessage update;
          update.kind = ActorMsgKind::kThresholdUpdate;
          update.epoch = t;
          update.value = config_.thresholds[static_cast<size_t>(i)];
          if (!transport->Send(Envelope{kCoordinatorId, i, update})) {
            return InternalError("transport closed during threshold re-sync");
          }
          DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kThresholdUpdate,
                        t, i, config_.thresholds[static_cast<size_t>(i)]);
        }
      }
      channel_.CountResync(static_cast<int64_t>(recovered.size()));
    }

    // Epoch barrier: every site observes its value and reports back whether
    // its local constraint fired. These are synchronization messages (they
    // model the passage of simulated time), not protocol traffic — the
    // protocol's alarms are replayed through the channel below.
    for (int i = 0; i < n; ++i) {
      ActorMessage start;
      start.kind = ActorMsgKind::kEpochStart;
      start.epoch = t;
      start.flag = channel_.SiteUp(i);
      if (!transport->Send(Envelope{kCoordinatorId, i, start})) {
        return InternalError("transport closed during epoch start");
      }
    }
    std::fill(alarmed.begin(), alarmed.end(), 0);
    int reports_pending = n;
    Envelope e;
    while (reports_pending > 0) {
      if (!transport->RecvCoordinator(&e)) {
        return InternalError("transport closed while collecting reports");
      }
      if (e.msg.kind != ActorMsgKind::kEpochReport || e.msg.epoch != t) {
        return InternalError("out-of-order message at epoch barrier");
      }
      alarmed[static_cast<size_t>(e.from)] = e.msg.flag ? 1 : 0;
      alarm_value[static_cast<size_t>(e.from)] = e.msg.value;
      --reports_pending;
    }

    EpochDetection det;
    det.epoch = t;
    if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
      // Delayed alarms arriving now still trigger a poll; late reports of
      // other kinds are consumed and ignored (mirrors the lockstep scheme).
      std::vector<Channel::Arrival> stale_alarms =
          channel_.TakeArrivals(MessageType::kAlarm);
      channel_.TakeArrivals(MessageType::kFilterReport);

      int delivered_alarms = 0;
      for (int i = 0; i < n; ++i) {
        if (!alarmed[static_cast<size_t>(i)]) {
          continue;
        }
        ++det.num_alarms;
        DCV_OBS_COUNT(alarms_rx_, 1);
        SendStatus s =
            channel_.SendFromSite(i, MessageType::kAlarm, /*reliable=*/true,
                                  alarm_value[static_cast<size_t>(i)]);
        if (s == SendStatus::kDelivered) {
          ++delivered_alarms;
        }
      }
      if (delivered_alarms > 0 || !stale_alarms.empty()) {
        DCV_RETURN_IF_ERROR(PollRound(transport, t, &poll_values));
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              config_.domain_max);
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    } else {  // kPolling
      if (t % config_.poll_period == 0) {
        DCV_RETURN_IF_ERROR(PollRound(transport, t, &poll_values));
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              /*pessimistic=*/{});
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    }
    out->detections.push_back(det);
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  for (int i = 0; i < n; ++i) {
    transport->Send(Envelope{kCoordinatorId, i, shutdown});
  }
  out->messages = counter_;
  out->reliability = channel_.stats();
  return OkStatus();
}

Status CoordinatorActor::RunFree(Transport* transport, RuntimeResult* out) {
  if (config_.num_shards > 1) {
    return RunFreeSharded(transport, out);
  }
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "free-running";

  const int n = config_.num_sites;
  out->site_updates.assign(static_cast<size_t>(n), 0);

  // Simulated time degrades to a watermark: the highest site-local update
  // index seen on any alarm. The channel only ever moves forward (crash and
  // partition windows still engage), never re-runs an epoch transition.
  int64_t watermark = -1;
  bool poll_outstanding = false;
  bool poll_dirty = false;  ///< Alarm arrived mid-round: re-poll after.
  int poll_pending = 0;
  std::vector<int64_t> poll_values(static_cast<size_t>(n), 0);
  int sites_done = 0;

  auto advance_watermark = [&](int64_t epoch) {
    if (epoch > watermark) {
      channel_.BeginEpoch(epoch);
      watermark = epoch;
    }
  };
  std::chrono::steady_clock::time_point round_start;
  auto start_poll = [&]() -> Status {
    ActorMessage request;
    request.kind = ActorMsgKind::kPollRequest;
    request.epoch = std::max<int64_t>(watermark, 0);
    for (int i = 0; i < n; ++i) {
      if (!transport->Send(Envelope{kCoordinatorId, i, request})) {
        return InternalError("transport closed during poll round");
      }
    }
    std::fill(poll_values.begin(), poll_values.end(), 0);
    poll_pending = n;
    poll_outstanding = true;
    DCV_OBS_COUNT(polls_, 1);
    if (poll_round_us_ != nullptr) {
      round_start = std::chrono::steady_clock::now();
    }
    return OkStatus();
  };

  Envelope e;
  while (sites_done < n || poll_outstanding) {
    if (!transport->RecvCoordinator(&e)) {
      return InternalError("transport closed while sites were live");
    }
    switch (e.msg.kind) {
      case ActorMsgKind::kAlarm: {
        advance_watermark(e.msg.epoch);
        DCV_OBS_COUNT(alarms_rx_, 1);
        ++out->total_alarms;
        SendStatus s = channel_.SendFromSite(e.from, MessageType::kAlarm,
                                             /*reliable=*/true, e.msg.value);
        std::vector<Channel::Arrival> stale =
            channel_.TakeArrivals(MessageType::kAlarm);
        if (s == SendStatus::kDelivered || !stale.empty()) {
          // At most one outstanding round: a burst of alarms collapses into
          // one poll now plus one catch-up poll after it resolves.
          if (poll_outstanding) {
            poll_dirty = true;
          } else {
            DCV_RETURN_IF_ERROR(start_poll());
          }
        }
        break;
      }
      case ActorMsgKind::kPollResponse: {
        if (!poll_outstanding) {
          break;  // Response to a round we already resolved; ignore.
        }
        poll_values[static_cast<size_t>(e.from)] = e.msg.value;
        if (--poll_pending == 0) {
          PollOutcome poll = channel_.PollSites(
              poll_values, config_.weights,
              config_.protocol == RuntimeProtocol::kLocalThreshold
                  ? config_.domain_max
                  : std::vector<int64_t>{});
          ++out->polled_epochs;
          if (poll.weighted_sum > config_.global_threshold) {
            ++out->violations_flagged;
          }
          poll_outstanding = false;
          if (poll_round_us_ != nullptr) {
            poll_round_us_->Observe(static_cast<double>(ElapsedUs(round_start)));
          }
          if (poll_dirty) {
            poll_dirty = false;
            DCV_RETURN_IF_ERROR(start_poll());
          }
        }
        break;
      }
      case ActorMsgKind::kSiteDone: {
        out->site_updates[static_cast<size_t>(e.from)] = e.msg.value;
        ++sites_done;
        break;
      }
      default:
        return InternalError(std::string("unexpected ") +
                             std::string(ActorMsgKindName(e.msg.kind)) +
                             " in free-running mode");
    }
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  for (int i = 0; i < n; ++i) {
    transport->Send(Envelope{kCoordinatorId, i, shutdown});
  }
  out->messages = counter_;
  out->reliability = channel_.stats();
  for (int64_t u : out->site_updates) {
    out->total_updates += u;
  }
  return OkStatus();
}

Status CoordinatorActor::RunVirtualSharded(Transport* transport,
                                           int64_t num_epochs,
                                           RuntimeResult* out) {
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "virtual";
  out->epochs = num_epochs;
  out->detections.clear();
  out->detections.reserve(static_cast<size_t>(num_epochs));

  const int n = config_.num_sites;
  const int k = config_.num_shards;
  DCV_ASSIGN_OR_RETURN(ShardLayout layout, MakeShardLayout(n, k));
  if (transport->num_shards() != k) {
    return InvalidArgumentError(
        "transport shard count does not match coordinator num_shards");
  }

  // Spawn the shard coordinators. Virtual-time shards are channel-free
  // relays: they run the epoch barrier and poll fan-out for their site
  // range and feed ground truth back; every Channel call stays on this
  // thread in flat-coordinator order, so the run is bit-identical to the
  // lockstep simulator for any k.
  const LocalPlan plan{config_.thresholds, config_.domain_max};
  Mailbox<RootMsg> root_box(static_cast<size_t>(4 * k + 16));
  std::vector<std::unique_ptr<Mailbox<ShardCmd>>> cmd_boxes;
  std::vector<std::thread> shards;
  cmd_boxes.reserve(static_cast<size_t>(k));
  shards.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    cmd_boxes.push_back(std::make_unique<Mailbox<ShardCmd>>(4));
  }
  for (int s = 0; s < k; ++s) {
    ShardContext ctx;
    ctx.shard = s;
    ctx.layout = layout;
    ctx.transport = transport;
    ctx.cmds = cmd_boxes[static_cast<size_t>(s)].get();
    ctx.to_root = &root_box;
    ctx.plan = SliceForShard(plan, layout, s);
    ctx.protocol = config_.protocol;
    shards.emplace_back(RunShardVirtual, std::move(ctx));
  }

  // Abort path: close the transport and the command boxes so every shard
  // (blocked on either) wakes and exits, then join before returning.
  auto abort_run = [&](Status status) {
    transport->Shutdown();
    for (auto& box : cmd_boxes) {
      box->Close();
    }
    for (std::thread& th : shards) {
      th.join();
    }
    return status;
  };

  // Collects one partial per shard for the current round; arrival order
  // across shards is free, content is not.
  std::vector<std::vector<std::pair<int, int64_t>>> partials(
      static_cast<size_t>(k));
  std::vector<RootMsg> root_batch;
  auto collect = [&](RootMsg::Kind want, int64_t epoch) -> Status {
    int received = 0;
    while (received < k) {
      root_batch.clear();
      if (root_box.PopAll(&root_batch) == 0) {
        return InternalError("root mailbox closed while collecting partials");
      }
      for (RootMsg& msg : root_batch) {
        if (msg.kind == RootMsg::Kind::kError) {
          return msg.status;
        }
        if (msg.kind != want || msg.epoch != epoch) {
          return InternalError("out-of-order shard partial");
        }
        partials[static_cast<size_t>(msg.shard)] = std::move(msg.entries);
        ++received;
      }
    }
    return OkStatus();
  };

  std::vector<int64_t> poll_values(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> resync(static_cast<size_t>(k));
  auto poll_shards = [&](int64_t t) -> Status {
    DCV_OBS_COUNT(polls_, 1);
    for (int s = 0; s < k; ++s) {
      ShardCmd cmd;
      cmd.kind = ShardCmd::Kind::kPoll;
      cmd.epoch = t;
      if (!cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd))) {
        return InternalError("shard command box closed");
      }
    }
    DCV_RETURN_IF_ERROR(collect(RootMsg::Kind::kPollPartial, t));
    for (int s = 0; s < k; ++s) {
      for (const auto& [site, value] : partials[static_cast<size_t>(s)]) {
        poll_values[static_cast<size_t>(site)] = value;
      }
    }
    return OkStatus();
  };

  for (int64_t t = 0; t < num_epochs; ++t) {
    obs::ScopedTimer epoch_timer(epoch_us_);
    // The root replays the flat coordinator's channel-call sequence
    // verbatim: BeginEpoch, re-sync sends, (barrier), stale arrivals,
    // alarm replays in ascending site order, then the poll. Shards only
    // move ground truth, so the RNG stream never diverges.
    channel_.BeginEpoch(t);

    for (auto& r : resync) {
      r.clear();
    }
    if (config_.protocol == RuntimeProtocol::kLocalThreshold &&
        !channel_.newly_recovered().empty()) {
      const std::vector<int> recovered = channel_.newly_recovered();
      for (int i : recovered) {
        SendStatus s = channel_.SendToSite(i, MessageType::kThresholdUpdate,
                                           /*reliable=*/true);
        if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
          // The owning shard pushes the transport message (before its
          // kEpochStart, preserving the per-site FIFO); the wire charge
          // already happened here.
          resync[static_cast<size_t>(layout.ShardOf(i))].push_back(i);
          DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kThresholdUpdate,
                        t, i, config_.thresholds[static_cast<size_t>(i)]);
        }
      }
      channel_.CountResync(static_cast<int64_t>(recovered.size()));
    }

    for (int s = 0; s < k; ++s) {
      ShardCmd cmd;
      cmd.kind = ShardCmd::Kind::kEpoch;
      cmd.epoch = t;
      const int start = layout.ShardStart(s);
      const int size = layout.ShardSize(s);
      cmd.up.resize(static_cast<size_t>(size));
      for (int i = 0; i < size; ++i) {
        cmd.up[static_cast<size_t>(i)] = channel_.SiteUp(start + i) ? 1 : 0;
      }
      cmd.resync_sites = std::move(resync[static_cast<size_t>(s)]);
      if (!cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd))) {
        return abort_run(InternalError("shard command box closed"));
      }
    }
    if (Status st = collect(RootMsg::Kind::kEpochPartial, t); !st.ok()) {
      return abort_run(st);
    }

    EpochDetection det;
    det.epoch = t;
    if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
      std::vector<Channel::Arrival> stale_alarms =
          channel_.TakeArrivals(MessageType::kAlarm);
      channel_.TakeArrivals(MessageType::kFilterReport);

      int delivered_alarms = 0;
      // Shards are contiguous and entries ascend within a shard, so this
      // double loop visits alarmed sites in ascending global order — the
      // flat coordinator's (and the lockstep scheme's) replay order.
      for (int s = 0; s < k; ++s) {
        for (const auto& [site, value] : partials[static_cast<size_t>(s)]) {
          ++det.num_alarms;
          DCV_OBS_COUNT(alarms_rx_, 1);
          SendStatus st = channel_.SendFromSite(site, MessageType::kAlarm,
                                                /*reliable=*/true, value);
          if (st == SendStatus::kDelivered) {
            ++delivered_alarms;
          }
        }
      }
      if (delivered_alarms > 0 || !stale_alarms.empty()) {
        if (Status st = poll_shards(t); !st.ok()) {
          return abort_run(st);
        }
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              config_.domain_max);
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    } else {  // kPolling
      if (t % config_.poll_period == 0) {
        if (Status st = poll_shards(t); !st.ok()) {
          return abort_run(st);
        }
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              /*pessimistic=*/{});
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    }
    out->detections.push_back(det);
  }

  for (int s = 0; s < k; ++s) {
    ShardCmd cmd;
    cmd.kind = ShardCmd::Kind::kShutdown;
    cmd_boxes[static_cast<size_t>(s)]->Push(std::move(cmd));
  }
  for (auto& box : cmd_boxes) {
    box->Close();
  }
  for (std::thread& th : shards) {
    th.join();
  }
  out->messages = counter_;
  out->reliability = channel_.stats();
  return OkStatus();
}

Status CoordinatorActor::RunFreeSharded(Transport* transport,
                                        RuntimeResult* out) {
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "free-running";

  const int n = config_.num_sites;
  const int k = config_.num_shards;
  DCV_ASSIGN_OR_RETURN(ShardLayout layout, MakeShardLayout(n, k));
  if (transport->num_shards() != k) {
    return InvalidArgumentError(
        "transport shard count does not match coordinator num_shards");
  }
  out->site_updates.assign(static_cast<size_t>(n), 0);

  // Free-running shards own the data plane for their slice: alarm intake,
  // a private channel over shard-local ids (SliceFaultSpec), and the
  // per-shard leg of every poll round, aggregated down to one partial
  // SUM/MIN/MAX message. The root only routes round lifecycles — O(k)
  // messages per round — and merges the per-shard accounting at exit.
  const LocalPlan plan{config_.thresholds, config_.domain_max};
  Mailbox<RootMsg> root_box(static_cast<size_t>(4 * k + 16));
  std::vector<std::thread> shards;
  shards.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    ShardContext ctx;
    ctx.shard = s;
    ctx.layout = layout;
    ctx.transport = transport;
    ctx.to_root = &root_box;
    ctx.plan = SliceForShard(plan, layout, s);
    ctx.protocol = config_.protocol;
    const int start = layout.ShardStart(s);
    const int size = layout.ShardSize(s);
    ctx.weights.assign(
        config_.weights.begin() + start,
        config_.weights.begin() + start + size);
    ctx.faults = SliceFaultSpec(config_.faults, layout, s);
    ctx.metrics = config_.metrics;
    ctx.recorder = config_.recorder;
    ctx.alarms_rx = alarms_rx_;
    shards.emplace_back(RunShardFree, std::move(ctx));
  }

  obs::Gauge* poll_min_gauge =
      config_.metrics != nullptr
          ? config_.metrics->gauge("runtime/coordinator/poll_min")
          : nullptr;
  obs::Gauge* poll_max_gauge =
      config_.metrics != nullptr
          ? config_.metrics->gauge("runtime/coordinator/poll_max")
          : nullptr;

  bool poll_outstanding = false;
  bool poll_dirty = false;
  int partials_pending = 0;
  int64_t round_sum = 0;
  int64_t round_min = 0;
  int64_t round_max = 0;
  int shards_done = 0;
  int shard_exits = 0;
  Status run_error = OkStatus();
  std::chrono::steady_clock::time_point round_start;

  auto start_round = [&]() -> bool {
    // Kick every shard's poll leg. The command is an envelope from
    // kCoordinatorId injected straight into the shard inbox (SendToShard
    // never crosses a wire), so each shard still blocks on one source.
    ActorMessage kick;
    kick.kind = ActorMsgKind::kPollRequest;
    for (int s = 0; s < k; ++s) {
      if (!transport->SendToShard(s, Envelope{kCoordinatorId, kCoordinatorId,
                                              kick})) {
        return false;
      }
    }
    partials_pending = k;
    round_sum = 0;
    round_min = std::numeric_limits<int64_t>::max();
    round_max = std::numeric_limits<int64_t>::min();
    poll_outstanding = true;
    DCV_OBS_COUNT(polls_, 1);
    if (poll_round_us_ != nullptr) {
      round_start = std::chrono::steady_clock::now();
    }
    return true;
  };
  auto merge_exit = [&](RootMsg& msg) {
    ++shard_exits;
    out->total_alarms += msg.alarms;
    counter_.Merge(msg.messages);
    out->reliability = out->reliability + msg.reliability;
    if (!msg.status.ok() && run_error.ok()) {
      run_error = msg.status;
    }
  };

  std::vector<RootMsg> batch;
  while ((shards_done < k || poll_outstanding) && run_error.ok()) {
    batch.clear();
    if (root_box.PopAll(&batch) == 0) {
      run_error = InternalError("root mailbox closed while shards were live");
      break;
    }
    for (RootMsg& msg : batch) {
      if (!run_error.ok()) {
        break;
      }
      switch (msg.kind) {
        case RootMsg::Kind::kAlarmNotice: {
          // At most one outstanding global round, exactly like the flat
          // coordinator: notices during a round collapse into one catch-up.
          if (poll_outstanding) {
            poll_dirty = true;
          } else if (!start_round()) {
            run_error = InternalError("transport closed during poll round");
          }
          break;
        }
        case RootMsg::Kind::kPollPartial: {
          round_sum += msg.partial_sum;
          round_min = std::min(round_min, msg.partial_min);
          round_max = std::max(round_max, msg.partial_max);
          if (--partials_pending == 0) {
            ++out->polled_epochs;
            if (round_sum > config_.global_threshold) {
              ++out->violations_flagged;
            }
            poll_outstanding = false;
            if (poll_round_us_ != nullptr) {
              poll_round_us_->Observe(
                  static_cast<double>(ElapsedUs(round_start)));
            }
            if (poll_min_gauge != nullptr) {
              poll_min_gauge->Set(static_cast<double>(round_min));
              poll_max_gauge->Set(static_cast<double>(round_max));
            }
            if (poll_dirty) {
              poll_dirty = false;
              if (!start_round()) {
                run_error = InternalError("transport closed during poll round");
              }
            }
          }
          break;
        }
        case RootMsg::Kind::kShardDone: {
          for (const auto& [site, updates] : msg.entries) {
            out->site_updates[static_cast<size_t>(site)] = updates;
          }
          ++shards_done;
          break;
        }
        case RootMsg::Kind::kShardExit: {
          // Shards only exit unprompted when the transport died under
          // them; surface that as the run error but keep their stats.
          merge_exit(msg);
          if (run_error.ok()) {
            run_error = InternalError("shard exited while sites were live");
          }
          break;
        }
        case RootMsg::Kind::kError: {
          run_error = msg.status;
          break;
        }
      }
    }
  }

  // Shutdown: command every shard to stop; each forwards kShutdown to its
  // sites and reports final accounting. Exits are counted (not joined-for)
  // so a shard blocked pushing to the root box can always drain.
  ActorMessage stop;
  stop.kind = ActorMsgKind::kShutdown;
  for (int s = 0; s < k; ++s) {
    transport->SendToShard(s, Envelope{kCoordinatorId, kCoordinatorId, stop});
  }
  while (shard_exits < k) {
    batch.clear();
    if (root_box.PopAll(&batch) == 0) {
      break;
    }
    for (RootMsg& msg : batch) {
      if (msg.kind == RootMsg::Kind::kShardExit) {
        merge_exit(msg);
      }
      // Notices/partials that raced with shutdown are dropped.
    }
  }
  for (std::thread& th : shards) {
    th.join();
  }

  out->messages = counter_;
  for (int64_t u : out->site_updates) {
    out->total_updates += u;
  }
  return run_error;
}

}  // namespace dcv
