#include "runtime/coordinator.h"

#include <algorithm>
#include <utility>

namespace dcv {

CoordinatorActor::CoordinatorActor(Config config)
    : config_(std::move(config)), channel_(config_.faults) {}

Status CoordinatorActor::Init() {
  if (config_.num_sites < 1) {
    return InvalidArgumentError("coordinator needs at least one site");
  }
  if (static_cast<int>(config_.weights.size()) != config_.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  if (config_.protocol == RuntimeProtocol::kPolling &&
      config_.poll_period < 1) {
    return InvalidArgumentError("polling period must be >= 1");
  }
  if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
    if (static_cast<int>(config_.thresholds.size()) != config_.num_sites) {
      return InvalidArgumentError("thresholds size mismatch");
    }
    if (static_cast<int>(config_.domain_max.size()) != config_.num_sites) {
      return InvalidArgumentError("domain_max size mismatch");
    }
  }
  DCV_RETURN_IF_ERROR(channel_.Init(config_.num_sites, &counter_));
  channel_.SetObserver(config_.metrics, config_.recorder);
  if (config_.metrics != nullptr) {
    alarms_rx_ = config_.metrics->counter("runtime/coordinator/alarms");
    polls_ = config_.metrics->counter("runtime/coordinator/polls");
  }
  return OkStatus();
}

Status CoordinatorActor::PollRound(Transport* transport, int64_t epoch,
                                   std::vector<int64_t>* values) {
  DCV_OBS_COUNT(polls_, 1);
  ActorMessage request;
  request.kind = ActorMsgKind::kPollRequest;
  request.epoch = epoch;
  for (int i = 0; i < config_.num_sites; ++i) {
    if (!transport->Send(Envelope{kCoordinatorId, i, request})) {
      return InternalError("transport closed during poll round");
    }
  }
  values->assign(static_cast<size_t>(config_.num_sites), 0);
  int pending = config_.num_sites;
  Envelope e;
  while (pending > 0) {
    if (!transport->RecvCoordinator(&e)) {
      return InternalError("transport closed while collecting poll responses");
    }
    if (e.msg.kind != ActorMsgKind::kPollResponse) {
      return InternalError(std::string("unexpected ") +
                           std::string(ActorMsgKindName(e.msg.kind)) +
                           " during poll round");
    }
    (*values)[static_cast<size_t>(e.from)] = e.msg.value;
    --pending;
  }
  return OkStatus();
}

Status CoordinatorActor::RunVirtual(Transport* transport, int64_t num_epochs,
                                    RuntimeResult* out) {
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "virtual";
  out->epochs = num_epochs;
  out->detections.clear();
  out->detections.reserve(static_cast<size_t>(num_epochs));

  const int n = config_.num_sites;
  std::vector<char> alarmed(static_cast<size_t>(n), 0);
  std::vector<int64_t> alarm_value(static_cast<size_t>(n), 0);
  std::vector<int64_t> poll_values;

  for (int64_t t = 0; t < num_epochs; ++t) {
    // Same call order as the lockstep runner + scheme, so the channel's RNG
    // stream (and thus every fault fate) is bit-identical.
    channel_.BeginEpoch(t);

    // Recovered sites missed threshold pushes while down: re-sync. The wire
    // send goes through the channel (charged + can itself be lost); the
    // transport push carries the ground truth only when the wire said the
    // update got through. It is sent before this epoch's kEpochStart, and
    // the mailbox is per-producer FIFO, so the site installs the threshold
    // before it evaluates — exactly the lockstep scheme, which re-syncs at
    // the top of OnEpoch.
    if (config_.protocol == RuntimeProtocol::kLocalThreshold &&
        !channel_.newly_recovered().empty()) {
      const std::vector<int> recovered = channel_.newly_recovered();
      for (int i : recovered) {
        SendStatus s = channel_.SendToSite(i, MessageType::kThresholdUpdate,
                                           /*reliable=*/true);
        if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
          ActorMessage update;
          update.kind = ActorMsgKind::kThresholdUpdate;
          update.epoch = t;
          update.value = config_.thresholds[static_cast<size_t>(i)];
          if (!transport->Send(Envelope{kCoordinatorId, i, update})) {
            return InternalError("transport closed during threshold re-sync");
          }
          DCV_OBS_EVENT(config_.recorder, obs::TraceEventKind::kThresholdUpdate,
                        t, i, config_.thresholds[static_cast<size_t>(i)]);
        }
      }
      channel_.CountResync(static_cast<int64_t>(recovered.size()));
    }

    // Epoch barrier: every site observes its value and reports back whether
    // its local constraint fired. These are synchronization messages (they
    // model the passage of simulated time), not protocol traffic — the
    // protocol's alarms are replayed through the channel below.
    for (int i = 0; i < n; ++i) {
      ActorMessage start;
      start.kind = ActorMsgKind::kEpochStart;
      start.epoch = t;
      start.flag = channel_.SiteUp(i);
      if (!transport->Send(Envelope{kCoordinatorId, i, start})) {
        return InternalError("transport closed during epoch start");
      }
    }
    std::fill(alarmed.begin(), alarmed.end(), 0);
    int reports_pending = n;
    Envelope e;
    while (reports_pending > 0) {
      if (!transport->RecvCoordinator(&e)) {
        return InternalError("transport closed while collecting reports");
      }
      if (e.msg.kind != ActorMsgKind::kEpochReport || e.msg.epoch != t) {
        return InternalError("out-of-order message at epoch barrier");
      }
      alarmed[static_cast<size_t>(e.from)] = e.msg.flag ? 1 : 0;
      alarm_value[static_cast<size_t>(e.from)] = e.msg.value;
      --reports_pending;
    }

    EpochDetection det;
    det.epoch = t;
    if (config_.protocol == RuntimeProtocol::kLocalThreshold) {
      // Delayed alarms arriving now still trigger a poll; late reports of
      // other kinds are consumed and ignored (mirrors the lockstep scheme).
      std::vector<Channel::Arrival> stale_alarms =
          channel_.TakeArrivals(MessageType::kAlarm);
      channel_.TakeArrivals(MessageType::kFilterReport);

      int delivered_alarms = 0;
      for (int i = 0; i < n; ++i) {
        if (!alarmed[static_cast<size_t>(i)]) {
          continue;
        }
        ++det.num_alarms;
        DCV_OBS_COUNT(alarms_rx_, 1);
        SendStatus s =
            channel_.SendFromSite(i, MessageType::kAlarm, /*reliable=*/true,
                                  alarm_value[static_cast<size_t>(i)]);
        if (s == SendStatus::kDelivered) {
          ++delivered_alarms;
        }
      }
      if (delivered_alarms > 0 || !stale_alarms.empty()) {
        DCV_RETURN_IF_ERROR(PollRound(transport, t, &poll_values));
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              config_.domain_max);
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    } else {  // kPolling
      if (t % config_.poll_period == 0) {
        DCV_RETURN_IF_ERROR(PollRound(transport, t, &poll_values));
        PollOutcome poll = channel_.PollSites(poll_values, config_.weights,
                                              /*pessimistic=*/{});
        det.polled = true;
        det.violation_reported = poll.weighted_sum > config_.global_threshold;
      }
    }
    out->detections.push_back(det);
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  for (int i = 0; i < n; ++i) {
    transport->Send(Envelope{kCoordinatorId, i, shutdown});
  }
  out->messages = counter_;
  out->reliability = channel_.stats();
  return OkStatus();
}

Status CoordinatorActor::RunFree(Transport* transport, RuntimeResult* out) {
  out->protocol = config_.protocol == RuntimeProtocol::kLocalThreshold
                      ? "local-threshold"
                      : "polling";
  out->mode = "free-running";

  const int n = config_.num_sites;
  out->site_updates.assign(static_cast<size_t>(n), 0);

  // Simulated time degrades to a watermark: the highest site-local update
  // index seen on any alarm. The channel only ever moves forward (crash and
  // partition windows still engage), never re-runs an epoch transition.
  int64_t watermark = -1;
  bool poll_outstanding = false;
  bool poll_dirty = false;  ///< Alarm arrived mid-round: re-poll after.
  int poll_pending = 0;
  std::vector<int64_t> poll_values(static_cast<size_t>(n), 0);
  int sites_done = 0;

  auto advance_watermark = [&](int64_t epoch) {
    if (epoch > watermark) {
      channel_.BeginEpoch(epoch);
      watermark = epoch;
    }
  };
  auto start_poll = [&]() -> Status {
    ActorMessage request;
    request.kind = ActorMsgKind::kPollRequest;
    request.epoch = std::max<int64_t>(watermark, 0);
    for (int i = 0; i < n; ++i) {
      if (!transport->Send(Envelope{kCoordinatorId, i, request})) {
        return InternalError("transport closed during poll round");
      }
    }
    std::fill(poll_values.begin(), poll_values.end(), 0);
    poll_pending = n;
    poll_outstanding = true;
    DCV_OBS_COUNT(polls_, 1);
    return OkStatus();
  };

  Envelope e;
  while (sites_done < n || poll_outstanding) {
    if (!transport->RecvCoordinator(&e)) {
      return InternalError("transport closed while sites were live");
    }
    switch (e.msg.kind) {
      case ActorMsgKind::kAlarm: {
        advance_watermark(e.msg.epoch);
        DCV_OBS_COUNT(alarms_rx_, 1);
        ++out->total_alarms;
        SendStatus s = channel_.SendFromSite(e.from, MessageType::kAlarm,
                                             /*reliable=*/true, e.msg.value);
        std::vector<Channel::Arrival> stale =
            channel_.TakeArrivals(MessageType::kAlarm);
        if (s == SendStatus::kDelivered || !stale.empty()) {
          // At most one outstanding round: a burst of alarms collapses into
          // one poll now plus one catch-up poll after it resolves.
          if (poll_outstanding) {
            poll_dirty = true;
          } else {
            DCV_RETURN_IF_ERROR(start_poll());
          }
        }
        break;
      }
      case ActorMsgKind::kPollResponse: {
        if (!poll_outstanding) {
          break;  // Response to a round we already resolved; ignore.
        }
        poll_values[static_cast<size_t>(e.from)] = e.msg.value;
        if (--poll_pending == 0) {
          PollOutcome poll = channel_.PollSites(
              poll_values, config_.weights,
              config_.protocol == RuntimeProtocol::kLocalThreshold
                  ? config_.domain_max
                  : std::vector<int64_t>{});
          ++out->polled_epochs;
          if (poll.weighted_sum > config_.global_threshold) {
            ++out->violations_flagged;
          }
          poll_outstanding = false;
          if (poll_dirty) {
            poll_dirty = false;
            DCV_RETURN_IF_ERROR(start_poll());
          }
        }
        break;
      }
      case ActorMsgKind::kSiteDone: {
        out->site_updates[static_cast<size_t>(e.from)] = e.msg.value;
        ++sites_done;
        break;
      }
      default:
        return InternalError(std::string("unexpected ") +
                             std::string(ActorMsgKindName(e.msg.kind)) +
                             " in free-running mode");
    }
  }

  ActorMessage shutdown;
  shutdown.kind = ActorMsgKind::kShutdown;
  for (int i = 0; i < n; ++i) {
    transport->Send(Envelope{kCoordinatorId, i, shutdown});
  }
  out->messages = counter_;
  out->reliability = channel_.stats();
  for (int64_t u : out->site_updates) {
    out->total_updates += u;
  }
  return OkStatus();
}

}  // namespace dcv
