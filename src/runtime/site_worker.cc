#include "runtime/site_worker.h"

#include <limits>
#include <memory>
#include <utility>

#include "runtime/site_actor.h"

namespace dcv {

Result<SiteWorkerReport> RunSiteWorker(const Trace* eval,
                                       const SiteWorkerOptions& options) {
  if (options.num_sites < 1 || options.num_workers < 1 ||
      options.num_workers > options.num_sites) {
    return InvalidArgumentError("bad fabric shape");
  }
  if (options.worker < 0 || options.worker >= options.num_workers) {
    return InvalidArgumentError("worker index out of range");
  }
  if (eval != nullptr && eval->num_sites() != options.num_sites) {
    return InvalidArgumentError("eval trace site count does not match fabric");
  }
  if (eval == nullptr && options.synthetic_updates < 1) {
    return InvalidArgumentError(
        "site worker needs an eval trace or a synthetic workload");
  }

  SocketTransport::Options sopts = options.socket;
  sopts.metrics = options.metrics;
  DCV_ASSIGN_OR_RETURN(
      std::unique_ptr<SocketTransport> transport,
      SocketTransport::Connect(options.host, options.port, options.worker,
                               options.num_sites, options.num_workers, sopts));

  // Owned actors start unconstrained; the real thresholds arrive as the
  // coordinator's first envelopes (per-connection FIFO guarantees they
  // install before any epoch start or poll reaches the site).
  std::vector<std::unique_ptr<SiteActor>> actors;
  std::vector<SiteActor*> owned;
  for (int i = options.worker; i < options.num_sites;
       i += options.num_workers) {
    SiteActor::Config cfg;
    cfg.site = i;
    cfg.threshold = std::numeric_limits<int64_t>::max();
    if (eval != nullptr) {
      cfg.series = eval->SiteSeries(i);
    } else {
      cfg.synthetic_updates = options.synthetic_updates;
    }
    cfg.seed = options.seed;
    cfg.synthetic_max = options.synthetic_max;
    cfg.metrics = options.metrics;
    actors.push_back(std::make_unique<SiteActor>(cfg));
    owned.push_back(actors.back().get());
  }

  SiteWorkerReport report;
  for (const SiteActor* s : owned) {
    report.sites.push_back(s->site());
  }
  report.virtual_time = transport->virtual_time();

  // Initial threshold sync: exactly one kThresholdUpdate per owned site
  // before the run proper. A kShutdown here means the coordinator aborted
  // during startup; exit cleanly instead of erroring.
  size_t pending = owned.size();
  bool aborted = false;
  Envelope e;
  while (pending > 0 && !aborted) {
    if (!transport->RecvWorker(options.worker, &e)) {
      transport->Shutdown();
      return InternalError(
          "connection closed before initial threshold sync completed");
    }
    switch (e.msg.kind) {
      case ActorMsgKind::kThresholdUpdate: {
        bool found = false;
        for (SiteActor* s : owned) {
          if (s->site() == e.to) {
            s->OnThresholdUpdate(e.msg.value);
            found = true;
            break;
          }
        }
        if (!found) {
          transport->Shutdown();
          return InternalError("threshold sync addressed to unowned site " +
                               std::to_string(e.to));
        }
        --pending;
        break;
      }
      case ActorMsgKind::kShutdown:
        aborted = true;
        break;
      default:
        transport->Shutdown();
        return InternalError("unexpected message during threshold sync");
    }
  }

  if (!aborted) {
    if (report.virtual_time) {
      RunSiteWorkerVirtual(transport.get(), options.worker, owned);
    } else {
      RunSiteWorkerFree(transport.get(), options.worker, owned);
    }
  }
  transport->Shutdown();

  for (const SiteActor* s : owned) {
    report.total_updates += s->updates_processed();
  }
  report.socket = transport->stats();
  return report;
}

}  // namespace dcv
