#include "runtime/site_worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "runtime/site_actor.h"

namespace dcv {
namespace {

/// Worker trace batches are bounded so a telemetry frame always fits under
/// kMaxTelemetryPayload (each encoded event is ~40 bytes).
constexpr size_t kMaxTelemetryEvents = 8192;

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

TelemetryFrame BuildTelemetryFrame(const SiteWorkerOptions& options,
                                   SocketTransport* transport,
                                   bool final_flush) {
  TelemetryFrame t;
  t.worker = options.worker;
  t.final_flush = final_flush ? 1 : 0;
  t.wall_time_us = WallUs();
  t.clock_offset_us = transport->clock_offset_us();
  if (options.metrics != nullptr) {
    t.metrics = options.metrics->Snapshot();
  }
  if (options.recorder != nullptr) {
    std::vector<obs::TraceEvent> events = options.recorder->Events();
    const size_t start =
        events.size() > kMaxTelemetryEvents ? events.size() - kMaxTelemetryEvents
                                            : 0;
    t.events.reserve(events.size() - start);
    for (size_t i = start; i < events.size(); ++i) {
      TelemetryTraceEvent te;
      te.kind = static_cast<uint8_t>(events[i].kind);
      te.epoch = events[i].epoch;
      te.site = events[i].site;
      te.value = events[i].value;
      te.duration_us = events[i].duration_us;
      te.ts_us = events[i].ts_us;
      t.events.push_back(te);
    }
  }
  return t;
}

}  // namespace

Result<SiteWorkerReport> RunSiteWorker(const Trace* eval,
                                       const SiteWorkerOptions& options) {
  if (options.num_sites < 1 || options.num_workers < 1 ||
      options.num_workers > options.num_sites) {
    return InvalidArgumentError("bad fabric shape");
  }
  if (options.worker < 0 || options.worker >= options.num_workers) {
    return InvalidArgumentError("worker index out of range");
  }
  if (eval != nullptr && eval->num_sites() != options.num_sites) {
    return InvalidArgumentError("eval trace site count does not match fabric");
  }
  if (eval == nullptr && options.synthetic_updates < 1) {
    return InvalidArgumentError(
        "site worker needs an eval trace or a synthetic workload");
  }

  if (options.recorder != nullptr) {
    // Distributed run: worker events need wall timestamps so the
    // coordinator's merged timeline can place them (after offset
    // correction) alongside its own lanes.
    options.recorder->EnableWallClock();
  }
  SocketTransport::Options sopts = options.socket;
  sopts.metrics = options.metrics;
  sopts.recorder = options.recorder;
  DCV_ASSIGN_OR_RETURN(
      std::unique_ptr<SocketTransport> transport,
      SocketTransport::Connect(options.host, options.port, options.worker,
                               options.num_sites, options.num_workers, sopts));

  // Owned sites start unconstrained; the real thresholds arrive as the
  // coordinator's first envelopes (per-connection FIFO guarantees they
  // install before any epoch start or poll reaches the site).
  const bool multiplexed = options.engine == SiteEngineKind::kMultiplexed;
  std::vector<int> owned_sites;
  for (int i = options.worker; i < options.num_sites;
       i += options.num_workers) {
    owned_sites.push_back(i);
  }
  std::vector<std::unique_ptr<SiteActor>> actors;
  std::vector<SiteActor*> owned;
  std::unique_ptr<SiteEngine> engine;
  if (multiplexed) {
    SiteEngine::Config ecfg;
    ecfg.worker = options.worker;
    ecfg.num_workers = options.num_workers;
    ecfg.num_sites = options.num_sites;
    for (int i : owned_sites) {
      ecfg.thresholds.push_back(std::numeric_limits<int64_t>::max());
      if (eval != nullptr) {
        ecfg.series.push_back(eval->SiteSeries(i));
      }
    }
    ecfg.synthetic_updates = eval == nullptr ? options.synthetic_updates : 0;
    ecfg.seed = options.seed;
    ecfg.synthetic_max = options.synthetic_max;
    ecfg.metrics = options.metrics;
    ecfg.recorder = options.recorder;
    engine = std::make_unique<SiteEngine>(std::move(ecfg));
  } else {
    for (int i : owned_sites) {
      SiteActor::Config cfg;
      cfg.site = i;
      cfg.threshold = std::numeric_limits<int64_t>::max();
      if (eval != nullptr) {
        cfg.series = eval->SiteSeries(i);
      } else {
        cfg.synthetic_updates = options.synthetic_updates;
      }
      cfg.seed = options.seed;
      cfg.synthetic_max = options.synthetic_max;
      cfg.metrics = options.metrics;
      cfg.recorder = options.recorder;
      actors.push_back(std::make_unique<SiteActor>(cfg));
      owned.push_back(actors.back().get());
    }
  }

  SiteWorkerReport report;
  report.sites = owned_sites;
  report.virtual_time = transport->virtual_time();

  // Initial threshold sync: exactly one kThresholdUpdate per owned site
  // before the run proper. A kShutdown here means the coordinator aborted
  // during startup; exit cleanly instead of erroring.
  size_t pending = owned_sites.size();
  bool aborted = false;
  Envelope e;
  while (pending > 0 && !aborted) {
    if (!transport->RecvWorker(options.worker, &e)) {
      transport->Shutdown();
      return InternalError(
          "connection closed before initial threshold sync completed");
    }
    switch (e.msg.kind) {
      case ActorMsgKind::kThresholdUpdate: {
        bool found = false;
        if (multiplexed) {
          found = engine->ApplyThresholdUpdate(e.to, e.msg.value);
        } else {
          for (SiteActor* s : owned) {
            if (s->site() == e.to) {
              s->OnThresholdUpdate(e.msg.value);
              found = true;
              break;
            }
          }
        }
        if (!found) {
          transport->Shutdown();
          return InternalError("threshold sync addressed to unowned site " +
                               std::to_string(e.to));
        }
        --pending;
        break;
      }
      case ActorMsgKind::kShutdown:
        aborted = true;
        break;
      default:
        transport->Shutdown();
        return InternalError("unexpected message during threshold sync");
    }
  }

  // Periodic telemetry flusher: pushes a cumulative registry snapshot (plus
  // the recent trace-event tail) toward the coordinator. Latest-wins merge
  // semantics make the cadence a freshness knob, not a correctness one.
  std::mutex flush_mu;
  std::condition_variable flush_cv;
  bool flush_stop = false;
  std::thread flusher;
  if (options.telemetry_interval_ms > 0) {
    flusher = std::thread([&] {
      std::unique_lock<std::mutex> lock(flush_mu);
      while (!flush_cv.wait_for(
          lock, std::chrono::milliseconds(options.telemetry_interval_ms),
          [&] { return flush_stop; })) {
        lock.unlock();
        TelemetryFrame t =
            BuildTelemetryFrame(options, transport.get(), /*final_flush=*/false);
        // A failed push (connection mid-resume) is harmless: the next tick
        // or the final flush carries a fresher cumulative snapshot.
        (void)transport->SendTelemetry(t);
        lock.lock();
      }
    });
  }

  if (!aborted) {
    if (multiplexed) {
      if (report.virtual_time) {
        engine->RunVirtual(transport.get());
      } else {
        engine->RunFree(transport.get());
      }
    } else if (report.virtual_time) {
      RunSiteWorkerVirtual(transport.get(), options.worker, owned);
    } else {
      RunSiteWorkerFree(transport.get(), options.worker, owned);
    }
  }

  if (flusher.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu);
      flush_stop = true;
    }
    flush_cv.notify_all();
    flusher.join();
  }
  // Final flush: the frame the coordinator's WaitForFinalTelemetry blocks
  // on. Sent after the run loop so it carries the complete counters.
  (void)transport->SendTelemetry(
      BuildTelemetryFrame(options, transport.get(), /*final_flush=*/true));
  transport->Shutdown();

  if (multiplexed) {
    for (int64_t u : engine->updates_processed()) {
      report.total_updates += u;
    }
  } else {
    for (const SiteActor* s : owned) {
      report.total_updates += s->updates_processed();
    }
  }
  report.socket = transport->stats();
  return report;
}

}  // namespace dcv
