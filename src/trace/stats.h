#ifndef DCV_TRACE_STATS_H_
#define DCV_TRACE_STATS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "trace/trace.h"

namespace dcv {

/// Summary statistics of one site's series.
struct SiteStats {
  double mean = 0.0;
  double stddev = 0.0;
  int64_t min = 0;
  int64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes summary stats for a site; zeroes for an empty trace.
SiteStats ComputeSiteStats(const Trace& trace, int site);

/// Per-epoch weighted sums sum_i A_i * X_i(t). Empty weights mean all-ones.
std::vector<int64_t> EpochSums(const Trace& trace,
                               const std::vector<int64_t>& weights);

/// Fraction of epochs whose weighted sum strictly exceeds `threshold`.
double OverflowFraction(const Trace& trace,
                        const std::vector<int64_t>& weights,
                        int64_t threshold);

/// The smallest global threshold T such that at most `fraction` of the
/// trace's epochs have weighted sum > T. Used by the benchmark harness to
/// sweep the x-axis of Figure 1 ("% of observations for which the sum
/// exceeded the chosen global threshold"). Fails on an empty trace.
Result<int64_t> ThresholdForOverflowFraction(
    const Trace& trace, const std::vector<int64_t>& weights, double fraction);

}  // namespace dcv

#endif  // DCV_TRACE_STATS_H_
