#ifndef DCV_TRACE_TRACE_BIN_H_
#define DCV_TRACE_TRACE_BIN_H_

#include <string>

#include "common/result.h"
#include "io/format.h"
#include "trace/trace.h"

namespace dcv {

/// Trace container formats the tools understand. Binary is the dcvb blocked
/// columnar format (src/io/format.h); CSV is the legacy "epoch,site0,..."
/// text table.
enum class TraceFormat {
  kCsv,
  kBinary,
};

/// Identifies a trace file by its leading magic bytes: "DCVB" means binary,
/// anything else (including a short file) is assumed CSV — the CSV parser
/// then produces the real diagnostic if it is neither. Only fails when the
/// file cannot be opened at all.
Result<TraceFormat> SniffTraceFormat(const std::string& path);

/// Writes `trace` as a dcvb file: one column per site, named after the
/// site; the epoch index is implicit in the row number (rows are epochs in
/// order), which is also what makes delta/zoh coding effective.
Status WriteTraceBin(const Trace& trace, const std::string& path,
                     const io::WriterOptions& options = {});

/// Reads a dcvb file written by WriteTraceBin (or `dcvtool convert`).
/// Values are validated exactly like AppendEpoch (non-negative), so a
/// corrupt-but-CRC-clean file cannot smuggle invalid observations in.
Result<Trace> ReadTraceBin(const std::string& path);

/// Loads a trace in either format, sniffing by magic bytes. This is the
/// entry point every tool uses, so any command that accepts a trace file
/// accepts both formats transparently.
Result<Trace> LoadTrace(const std::string& path);

}  // namespace dcv

#endif  // DCV_TRACE_TRACE_BIN_H_
