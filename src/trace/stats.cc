#include "trace/stats.h"

#include <algorithm>

#include "common/math_util.h"

namespace dcv {

SiteStats ComputeSiteStats(const Trace& trace, int site) {
  SiteStats stats;
  if (trace.num_epochs() == 0) {
    return stats;
  }
  std::vector<int64_t> series = trace.SiteSeries(site);
  std::vector<double> values(series.begin(), series.end());
  stats.mean = Mean(values);
  stats.stddev = StdDev(values);
  stats.min = *std::min_element(series.begin(), series.end());
  stats.max = *std::max_element(series.begin(), series.end());
  stats.p50 = Quantile(values, 0.50);
  stats.p90 = Quantile(values, 0.90);
  stats.p99 = Quantile(values, 0.99);
  return stats;
}

std::vector<int64_t> EpochSums(const Trace& trace,
                               const std::vector<int64_t>& weights) {
  std::vector<int64_t> sums;
  sums.reserve(static_cast<size_t>(trace.num_epochs()));
  for (int64_t t = 0; t < trace.num_epochs(); ++t) {
    sums.push_back(trace.WeightedSum(t, weights));
  }
  return sums;
}

double OverflowFraction(const Trace& trace,
                        const std::vector<int64_t>& weights,
                        int64_t threshold) {
  if (trace.num_epochs() == 0) {
    return 0.0;
  }
  int64_t over = 0;
  for (int64_t t = 0; t < trace.num_epochs(); ++t) {
    if (trace.WeightedSum(t, weights) > threshold) {
      ++over;
    }
  }
  return static_cast<double>(over) / static_cast<double>(trace.num_epochs());
}

Result<int64_t> ThresholdForOverflowFraction(
    const Trace& trace, const std::vector<int64_t>& weights, double fraction) {
  if (trace.num_epochs() == 0) {
    return FailedPreconditionError("cannot pick a threshold from an empty trace");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    return InvalidArgumentError("fraction must be in [0, 1]");
  }
  std::vector<int64_t> sums = EpochSums(trace, weights);
  std::sort(sums.begin(), sums.end());
  // We need the smallest T with #{sum > T} <= fraction * n, i.e. T at the
  // (1 - fraction) quantile position.
  const size_t n = sums.size();
  double allowed = fraction * static_cast<double>(n);
  size_t max_over = static_cast<size_t>(allowed);  // floor.
  // T = value at index n - max_over - 1 guarantees at most max_over sums
  // exceed it (those strictly greater).
  size_t idx = n - std::min(n, max_over + 1);
  if (max_over >= n) {
    return int64_t{0};
  }
  return sums[idx];
}

}  // namespace dcv
