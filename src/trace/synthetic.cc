#include "trace/synthetic.h"

#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"

namespace dcv {
namespace {

int64_t DrawMarginal(Rng& rng, const SyntheticTraceOptions& options) {
  switch (options.marginal) {
    case Marginal::kUniform:
      return rng.UniformInt(0, options.domain_max);
    case Marginal::kZipf:
      return rng.Zipf(options.domain_max, options.param1);
    case Marginal::kPareto:
      return static_cast<int64_t>(
          std::llround(rng.Pareto(options.param1, options.param2)));
    case Marginal::kLogNormal:
      return static_cast<int64_t>(
          std::llround(rng.LogNormal(options.param1, options.param2)));
    case Marginal::kExponential:
      return static_cast<int64_t>(std::llround(
          rng.Exponential(options.param1)));
  }
  return 0;
}

}  // namespace

Result<Trace> GenerateSyntheticTrace(const SyntheticTraceOptions& options) {
  if (options.num_sites < 1 || options.num_epochs < 0) {
    return InvalidArgumentError("invalid synthetic trace dimensions");
  }
  if (options.domain_max < 1) {
    return InvalidArgumentError("domain_max must be >= 1");
  }
  if (options.correlation < 0.0 || options.correlation >= 1.0) {
    return InvalidArgumentError("correlation must be in [0, 1)");
  }

  Rng rng(options.seed);
  std::vector<double> scale(static_cast<size_t>(options.num_sites), 1.0);
  if (options.heterogeneous) {
    for (double& s : scale) {
      s = std::exp(rng.Normal(0.0, options.heterogeneity_sigma));
    }
  }

  Trace trace(options.num_sites);
  for (int64_t t = 0; t < options.num_epochs; ++t) {
    std::vector<int64_t> values(static_cast<size_t>(options.num_sites));
    const bool shared_epoch = rng.Bernoulli(options.correlation);
    const int64_t shared_draw = DrawMarginal(rng, options);
    for (int i = 0; i < options.num_sites; ++i) {
      int64_t draw = shared_epoch ? shared_draw : DrawMarginal(rng, options);
      double v = static_cast<double>(draw) * scale[static_cast<size_t>(i)];
      values[static_cast<size_t>(i)] = Clamp<int64_t>(
          static_cast<int64_t>(std::llround(v)), 0, options.domain_max);
    }
    DCV_RETURN_IF_ERROR(trace.AppendEpoch(std::move(values)));
  }
  return trace;
}

}  // namespace dcv
