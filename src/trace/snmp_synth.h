#ifndef DCV_TRACE_SNMP_SYNTH_H_
#define DCV_TRACE_SNMP_SYNTH_H_

#include <cstdint>

#include "common/result.h"
#include "trace/trace.h"

namespace dcv {

/// Generator of a synthetic stand-in for the Dartmouth CRAWDAD SNMP trace
/// used in the paper's evaluation (§6.3): per-access-point bytes transmitted
/// per five-minute interval, weekdays only.
///
/// The generator reproduces the statistical features the experiment depends
/// on (see DESIGN.md "Data substitution"):
///  * per-site scale heterogeneity — busy vs. quiet APs (lognormal spread),
///  * a shared diurnal (time-of-day) load curve with per-site phase jitter,
///  * heavy-tailed per-interval bursts (lognormal body + rare Pareto
///    spikes),
///  * week-over-week stationarity, with an optional injected distribution
///    shift (the paper's data triggered exactly one histogram recomputation
///    across four evaluation weeks),
///  * optional cross-site correlation (for the independence-assumption
///    ablation; the paper's model assumes independence).
struct SnmpTraceOptions {
  int num_sites = 10;
  int num_weeks = 5;           ///< Week 0 is typically used for training.
  int weekdays_per_week = 5;   ///< The paper restricts to weekdays.
  int epochs_per_day = 287;    ///< 287 * 5 = 1435 observations/week (§6.4).
  uint64_t seed = 42;

  double base_median = 2.0e5;     ///< Median per-interval bytes of a site.
  double site_scale_sigma = 1.0;  ///< Lognormal spread of per-site scale.
  double burst_sigma = 0.6;       ///< Lognormal sigma of per-interval bursts.

  /// AR(1) coefficient of each site's log-burst process in [0, 1): real
  /// five-minute traffic is strongly autocorrelated (consecutive intervals
  /// look alike); 0 gives i.i.d. bursts. The stationary marginal stays
  /// lognormal(0, burst_sigma) regardless.
  double burst_autocorr = 0.7;
  double spike_prob = 0.004;      ///< Probability of a Pareto spike.
  double spike_shape = 1.5;       ///< Pareto shape of spikes (heavier < 2).
  double diurnal_depth = 0.85;    ///< 0 = flat, 1 = nights near zero.
  double phase_jitter_hours = 1.5;

  /// Per-site *shape* heterogeneity in [0, 1): each site draws its own
  /// burst sigma in burst_sigma * [1 - spread, 1 + spread], its own spike
  /// probability in spike_prob * [1 - spread, 1 + spread], and its own
  /// diurnal depth in diurnal_depth * [1 - spread/2, min(1, 1 + spread/2)].
  /// Real access points differ in burstiness, not just scale; shape
  /// heterogeneity is what separates distribution-aware threshold selection
  /// from tail-equalizing heuristics.
  double shape_spread = 0.6;

  /// Fraction of sites with *bimodal* (classroom-style) load: mostly idle,
  /// but entering occasional multi-epoch "sessions" during which traffic is
  /// `session_factor` times the base level. Such sites have a plateau in
  /// their CDF between the idle mode and the session mode — the regime
  /// where tail-equalizing heuristics waste budget (they must pay the full
  /// mode jump at every such site to raise the common quantile) while the
  /// product-maximizing FPTAS spends it where it is cheap.
  double bimodal_fraction = 0.3;
  double session_start_prob = 0.015;  ///< Per-epoch session start chance.
  double session_mean_epochs = 18.0;  ///< Mean session length (geometric).
  double session_factor_median = 15.0;  ///< Median per-site session boost.
  double session_factor_sigma = 0.5;    ///< Lognormal spread of the boost.

  /// Cross-site correlation in [0, 1): fraction of the log-burst variance
  /// contributed by a factor shared across all sites at an epoch.
  double correlation = 0.0;

  /// Week index (0-based) at which a persistent load shift begins at a
  /// random `shift_site_fraction` of the sites; -1 disables the shift.
  int shift_week = -1;
  double shift_factor = 1.8;
  double shift_site_fraction = 0.3;

  /// Values are clamped into [0, domain_max].
  int64_t domain_max = 1'000'000'000;
};

/// Epochs in one generated week.
int64_t EpochsPerWeek(const SnmpTraceOptions& options);

/// Generates the trace; deterministic in options.seed.
Result<Trace> GenerateSnmpTrace(const SnmpTraceOptions& options);

}  // namespace dcv

#endif  // DCV_TRACE_SNMP_SYNTH_H_
