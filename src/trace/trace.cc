#include "trace/trace.h"

#include <algorithm>

#include "common/csv.h"
#include "common/logging.h"

namespace dcv {

Trace::Trace(int num_sites) {
  DCV_CHECK(num_sites >= 0) << "negative site count";
  site_names_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    site_names_.push_back("site" + std::to_string(i));
  }
}

Trace::Trace(std::vector<std::string> site_names)
    : site_names_(std::move(site_names)) {}

Status Trace::AppendEpoch(std::vector<int64_t> values) {
  if (values.size() != site_names_.size()) {
    return InvalidArgumentError(
        "epoch has " + std::to_string(values.size()) + " values but trace has " +
        std::to_string(site_names_.size()) + " sites");
  }
  for (int64_t v : values) {
    if (v < 0) {
      return InvalidArgumentError("trace values must be non-negative");
    }
  }
  epochs_.push_back(std::move(values));
  return OkStatus();
}

int64_t Trace::at(int64_t epoch, int site) const {
  DCV_CHECK(epoch >= 0 && epoch < num_epochs()) << "epoch out of range";
  DCV_CHECK(site >= 0 && site < num_sites()) << "site out of range";
  return epochs_[static_cast<size_t>(epoch)][static_cast<size_t>(site)];
}

const std::vector<int64_t>& Trace::epoch(int64_t epoch) const {
  DCV_CHECK(epoch >= 0 && epoch < num_epochs()) << "epoch out of range";
  return epochs_[static_cast<size_t>(epoch)];
}

std::vector<int64_t> Trace::SiteSeries(int site) const {
  DCV_CHECK(site >= 0 && site < num_sites()) << "site out of range";
  std::vector<int64_t> out;
  out.reserve(epochs_.size());
  for (const auto& e : epochs_) {
    out.push_back(e[static_cast<size_t>(site)]);
  }
  return out;
}

int64_t Trace::WeightedSum(int64_t epoch,
                           const std::vector<int64_t>& weights) const {
  const auto& e = this->epoch(epoch);
  int64_t sum = 0;
  for (size_t i = 0; i < e.size(); ++i) {
    int64_t w = i < weights.size() ? weights[i] : 1;
    sum += w * e[i];
  }
  return sum;
}

Result<Trace> Trace::Slice(int64_t begin, int64_t end) const {
  if (begin < 0 || end < begin || end > num_epochs()) {
    return OutOfRangeError("invalid trace slice [" + std::to_string(begin) +
                           ", " + std::to_string(end) + ")");
  }
  Trace out(site_names_);
  out.epochs_.assign(epochs_.begin() + begin, epochs_.begin() + end);
  return out;
}

int64_t Trace::MaxValue(int site) const {
  DCV_CHECK(site >= 0 && site < num_sites()) << "site out of range";
  int64_t best = 0;
  for (const auto& e : epochs_) {
    best = std::max(best, e[static_cast<size_t>(site)]);
  }
  return best;
}

int64_t Trace::GlobalMaxValue() const {
  int64_t best = 0;
  for (int i = 0; i < num_sites(); ++i) {
    best = std::max(best, MaxValue(i));
  }
  return best;
}

Status Trace::WriteCsv(const std::string& path) const {
  std::vector<std::string> header;
  header.push_back("epoch");
  for (const auto& name : site_names_) {
    header.push_back(name);
  }
  CsvTable table(std::move(header));
  for (int64_t t = 0; t < num_epochs(); ++t) {
    std::vector<std::string> row;
    row.reserve(site_names_.size() + 1);
    row.push_back(std::to_string(t));
    for (int64_t v : epochs_[static_cast<size_t>(t)]) {
      row.push_back(std::to_string(v));
    }
    table.AddRow(std::move(row));
  }
  return table.WriteToFile(path);
}

Result<Trace> Trace::ReadCsv(const std::string& path) {
  DCV_ASSIGN_OR_RETURN(CsvTable table,
                       CsvTable::ReadFromFile(path, /*has_header=*/true));
  if (table.header().size() < 2 || table.header()[0] != "epoch") {
    return InvalidArgumentError(
        "trace CSV must have an 'epoch' column followed by site columns");
  }
  std::vector<std::string> names(table.header().begin() + 1,
                                 table.header().end());
  Trace out(std::move(names));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<int64_t> values;
    values.reserve(table.header().size() - 1);
    for (size_t c = 1; c < table.header().size(); ++c) {
      DCV_ASSIGN_OR_RETURN(int64_t v, table.Int64At(r, c));
      values.push_back(v);
    }
    DCV_RETURN_IF_ERROR(out.AppendEpoch(std::move(values)));
  }
  return out;
}

}  // namespace dcv
