#include "trace/snmp_synth.h"

#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"

namespace dcv {
namespace {

// Smooth bump centered at `center` (hours) with the given width.
double Bump(double hour, double center, double width) {
  double d = (hour - center) / width;
  return std::exp(-0.5 * d * d);
}

// Campus-wifi-like diurnal curve over hour-of-day in [0, 24): quiet nights,
// a late-morning peak, an afternoon plateau, and an evening shoulder.
// Ranges over roughly [1 - depth, 1].
double Diurnal(double hour, double depth) {
  double activity = Bump(hour, 11.0, 2.8) + 0.9 * Bump(hour, 15.5, 2.8) +
                    0.55 * Bump(hour, 20.5, 2.0);
  constexpr double kPeak = 1.35;  // Approximate max of `activity`.
  return (1.0 - depth) + depth * Clamp(activity / kPeak, 0.0, 1.0);
}

}  // namespace

int64_t EpochsPerWeek(const SnmpTraceOptions& options) {
  return static_cast<int64_t>(options.weekdays_per_week) *
         options.epochs_per_day;
}

Result<Trace> GenerateSnmpTrace(const SnmpTraceOptions& options) {
  if (options.num_sites < 1) {
    return InvalidArgumentError("num_sites must be >= 1");
  }
  if (options.num_weeks < 1 || options.weekdays_per_week < 1 ||
      options.epochs_per_day < 1) {
    return InvalidArgumentError("trace dimensions must be >= 1");
  }
  if (options.correlation < 0.0 || options.correlation >= 1.0) {
    return InvalidArgumentError("correlation must be in [0, 1)");
  }
  if (options.domain_max < 1) {
    return InvalidArgumentError("domain_max must be >= 1");
  }
  if (options.shape_spread < 0.0 || options.shape_spread >= 1.0) {
    return InvalidArgumentError("shape_spread must be in [0, 1)");
  }
  if (options.burst_autocorr < 0.0 || options.burst_autocorr >= 1.0) {
    return InvalidArgumentError("burst_autocorr must be in [0, 1)");
  }

  Rng rng(options.seed);

  // Per-site static parameters: scale, phase, and distribution *shape*
  // (burstiness, spikiness, diurnal swing differ per access point).
  const size_t num_sites = static_cast<size_t>(options.num_sites);
  std::vector<double> base(num_sites);
  std::vector<double> phase(num_sites);
  std::vector<double> site_burst_sigma(num_sites);
  std::vector<double> site_spike_prob(num_sites);
  std::vector<double> site_diurnal_depth(num_sites);
  std::vector<bool> shifted(num_sites, false);
  std::vector<bool> bimodal(num_sites, false);
  std::vector<double> session_factor(num_sites, 1.0);
  std::vector<int64_t> session_remaining(num_sites, 0);
  const double spread = options.shape_spread;
  for (size_t i = 0; i < num_sites; ++i) {
    base[i] = options.base_median *
              std::exp(rng.Normal(0.0, options.site_scale_sigma));
    phase[i] = rng.Normal(0.0, options.phase_jitter_hours);
    site_burst_sigma[i] =
        options.burst_sigma * rng.UniformDouble(1.0 - spread, 1.0 + spread);
    site_spike_prob[i] = Clamp(
        options.spike_prob * rng.UniformDouble(1.0 - spread, 1.0 + spread),
        0.0, 1.0);
    site_diurnal_depth[i] = Clamp(
        options.diurnal_depth *
            rng.UniformDouble(1.0 - spread / 2.0, 1.0 + spread / 2.0),
        0.0, 1.0);
    if (options.shift_week >= 0) {
      shifted[i] = rng.Bernoulli(options.shift_site_fraction);
    }
    bimodal[i] = rng.Bernoulli(options.bimodal_fraction);
    if (bimodal[i]) {
      // Classroom-style sites idle at a fraction of the nominal base and
      // jump by a large per-site factor during sessions.
      base[i] *= 0.25;
      session_factor[i] =
          options.session_factor_median *
          std::exp(rng.Normal(0.0, options.session_factor_sigma));
    }
  }

  const double rho = options.correlation;
  const double phi = options.burst_autocorr;
  const double ar_innovation = std::sqrt(1.0 - phi * phi);
  // Per-site AR(1) state for the idiosyncratic log-burst component, started
  // from the stationary distribution (unit sigma; scaled per site below).
  std::vector<double> ar_state(num_sites);
  for (size_t i = 0; i < num_sites; ++i) {
    ar_state[i] = rng.Normal(0.0, 1.0);
  }

  Trace trace(options.num_sites);
  const int64_t week_epochs = EpochsPerWeek(options);
  const double hours_per_epoch = 24.0 / options.epochs_per_day;

  for (int week = 0; week < options.num_weeks; ++week) {
    for (int64_t e = 0; e < week_epochs; ++e) {
      const int64_t epoch_of_day = e % options.epochs_per_day;
      const double hour = static_cast<double>(epoch_of_day) * hours_per_epoch;
      // Shared burst factor drawn at unit sigma; each site applies its own
      // sigma split so that marginals keep the site's burstiness while the
      // correlated fraction rho is shared across sites.
      const double shared_unit = rng.Normal(0.0, 1.0);
      std::vector<int64_t> values(static_cast<size_t>(options.num_sites));
      for (int i = 0; i < options.num_sites; ++i) {
        size_t si = static_cast<size_t>(i);
        double site_hour = hour + phase[si];
        site_hour -= 24.0 * std::floor(site_hour / 24.0);
        double level = base[si] * Diurnal(site_hour, site_diurnal_depth[si]);
        if (bimodal[si]) {
          if (session_remaining[si] > 0) {
            level *= session_factor[si];
            --session_remaining[si];
          } else if (rng.Bernoulli(options.session_start_prob *
                                   Diurnal(site_hour,
                                           site_diurnal_depth[si]))) {
            // Sessions start mostly during busy hours and last a geometric
            // number of epochs.
            session_remaining[si] = 1 + static_cast<int64_t>(
                rng.Exponential(1.0 / options.session_mean_epochs));
          }
        }
        if (shifted[si] && options.shift_week >= 0 &&
            week >= options.shift_week) {
          level *= options.shift_factor;
        }
        const double shared_sigma = site_burst_sigma[si] * std::sqrt(rho);
        const double own_sigma = site_burst_sigma[si] * std::sqrt(1.0 - rho);
        // AR(1) step at unit sigma keeps the stationary marginal N(0, 1).
        ar_state[si] = phi * ar_state[si] +
                       ar_innovation * rng.Normal(0.0, 1.0);
        double burst =
            std::exp(shared_unit * shared_sigma + ar_state[si] * own_sigma);
        double v = level * burst;
        if (rng.Bernoulli(site_spike_prob[si])) {
          v *= rng.Pareto(1.0, options.spike_shape);
        }
        values[si] = Clamp<int64_t>(static_cast<int64_t>(std::llround(v)), 0,
                                    options.domain_max);
      }
      DCV_RETURN_IF_ERROR(trace.AppendEpoch(std::move(values)));
    }
  }
  return trace;
}

}  // namespace dcv
