#ifndef DCV_TRACE_SYNTHETIC_H_
#define DCV_TRACE_SYNTHETIC_H_

#include <cstdint>

#include "common/result.h"
#include "trace/trace.h"

namespace dcv {

/// Marginal distribution families for the generic synthetic workloads used
/// by tests, micro-benchmarks, and ablations.
enum class Marginal {
  kUniform,      ///< Uniform integers in [0, domain_max].
  kZipf,         ///< Zipf rank in [1, domain_max] with exponent param1.
  kPareto,       ///< Pareto(scale=param1, shape=param2), rounded & clamped.
  kLogNormal,    ///< exp(N(param1, param2)), rounded & clamped.
  kExponential,  ///< Exponential(rate=param1), rounded & clamped.
};

struct SyntheticTraceOptions {
  int num_sites = 4;
  int64_t num_epochs = 1000;
  uint64_t seed = 1;
  Marginal marginal = Marginal::kLogNormal;
  int64_t domain_max = 1'000'000;
  double param1 = 8.0;  ///< Family-specific (see Marginal).
  double param2 = 1.0;

  /// When true, each site's draws are scaled by a site-specific lognormal
  /// factor, making sites heterogeneous (the regime where distribution-aware
  /// threshold selection wins).
  bool heterogeneous = false;
  double heterogeneity_sigma = 1.0;

  /// Cross-site correlation in [0, 1): probability that an epoch reuses one
  /// shared draw for every site (mixture construction; preserves
  /// marginals).
  double correlation = 0.0;
};

/// Generates an i.i.d.-per-epoch trace with the requested marginals;
/// deterministic in options.seed.
Result<Trace> GenerateSyntheticTrace(const SyntheticTraceOptions& options);

}  // namespace dcv

#endif  // DCV_TRACE_SYNTHETIC_H_
