#ifndef DCV_TRACE_TRACE_H_
#define DCV_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dcv {

/// A multi-site time series: for each epoch (e.g., a five-minute polling
/// interval) one non-negative integer observation per site. This is the
/// workload format consumed by the monitoring simulator and produced by the
/// trace generators / CSV import.
class Trace {
 public:
  /// Creates an empty trace over `num_sites` sites. Site names default to
  /// "site<i>".
  explicit Trace(int num_sites);

  /// Creates with explicit site names.
  explicit Trace(std::vector<std::string> site_names);

  int num_sites() const { return static_cast<int>(site_names_.size()); }
  int64_t num_epochs() const {
    return static_cast<int64_t>(epochs_.size());
  }
  const std::vector<std::string>& site_names() const { return site_names_; }

  /// Appends one epoch of observations; `values.size()` must equal
  /// num_sites() and every value must be >= 0.
  Status AppendEpoch(std::vector<int64_t> values);

  /// Value of site `site` at epoch `epoch` (both bounds-checked by
  /// DCV_CHECK in debug spirit: out of range aborts).
  int64_t at(int64_t epoch, int site) const;

  /// One epoch's vector of per-site values.
  const std::vector<int64_t>& epoch(int64_t epoch) const;

  /// The full series of one site.
  std::vector<int64_t> SiteSeries(int site) const;

  /// Sum over sites at an epoch with per-site weights (weights may be empty
  /// for unweighted sums).
  int64_t WeightedSum(int64_t epoch, const std::vector<int64_t>& weights) const;

  /// Sub-trace of epochs [begin, end).
  Result<Trace> Slice(int64_t begin, int64_t end) const;

  /// Largest observed value of a site (0 for an empty trace).
  int64_t MaxValue(int site) const;

  /// Largest observed value across all sites.
  int64_t GlobalMaxValue() const;

  /// CSV round-trip: columns are epoch plus one column per site.
  Status WriteCsv(const std::string& path) const;
  static Result<Trace> ReadCsv(const std::string& path);

 private:
  std::vector<std::string> site_names_;
  std::vector<std::vector<int64_t>> epochs_;  // epochs_[t][site].
};

}  // namespace dcv

#endif  // DCV_TRACE_TRACE_H_
