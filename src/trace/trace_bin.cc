#include "trace/trace_bin.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "io/block_reader.h"
#include "io/block_writer.h"

namespace dcv {

Result<TraceFormat> SniffTraceFormat(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  uint8_t magic[4];
  const size_t got = std::fread(magic, 1, sizeof(magic), file);
  std::fclose(file);
  if (got == sizeof(magic) && ReadLe32(magic) == io::kFileMagic) {
    return TraceFormat::kBinary;
  }
  return TraceFormat::kCsv;
}

Status WriteTraceBin(const Trace& trace, const std::string& path,
                     const io::WriterOptions& options) {
  DCV_ASSIGN_OR_RETURN(
      auto writer,
      io::BlockWriter::Open(path, trace.site_names(), options));
  for (int64_t t = 0; t < trace.num_epochs(); ++t) {
    DCV_RETURN_IF_ERROR(writer->AppendRow(trace.epoch(t)));
  }
  return writer->Finish();
}

Result<Trace> ReadTraceBin(const std::string& path) {
  DCV_ASSIGN_OR_RETURN(auto reader, io::BlockReader::Open(path));
  Trace out(reader->column_names());
  io::ColumnBlock block;
  for (;;) {
    DCV_ASSIGN_OR_RETURN(bool more, reader->Next(&block));
    if (!more) {
      break;
    }
    for (int64_t r = 0; r < block.rows; ++r) {
      std::vector<int64_t> values;
      values.reserve(block.columns.size());
      for (const auto& col : block.columns) {
        values.push_back(col[static_cast<size_t>(r)]);
      }
      DCV_RETURN_IF_ERROR(out.AppendEpoch(std::move(values)));
    }
  }
  return out;
}

Result<Trace> LoadTrace(const std::string& path) {
  DCV_ASSIGN_OR_RETURN(TraceFormat format, SniffTraceFormat(path));
  if (format == TraceFormat::kBinary) {
    return ReadTraceBin(path);
  }
  return Trace::ReadCsv(path);
}

}  // namespace dcv
