#ifndef DCV_THRESHOLD_CDF_VIEW_H_
#define DCV_THRESHOLD_CDF_VIEW_H_

#include <cstdint>

#include "histogram/distribution.h"

namespace dcv {

/// A possibly-mirrored view of a site's distribution model, used by the
/// threshold solvers so they can always optimize the canonical problem
/// "maximize prod G_i(T_i) subject to sum A_i T_i <= T" regardless of the
/// original inequality's direction.
///
/// For an unmirrored view, G(t) = F(t) (frequency of X <= t). For a mirrored
/// view over Y = M - X, G(t) = F(M) - F(M - t - 1) (frequency of Y <= t,
/// i.e., X >= M - t). Both are non-decreasing in t.
class CdfView {
 public:
  CdfView(const DistributionModel* model, bool mirrored)
      : model_(model), mirrored_(mirrored) {}

  const DistributionModel* model() const { return model_; }
  bool mirrored() const { return mirrored_; }

  /// Domain maximum M of the viewed variable (same for Y = M - X).
  int64_t domain_max() const { return model_->domain_max(); }

  /// Total observation weight G(M) = F(M).
  double total() const { return model_->total_weight(); }

  /// G(t); clamps t into [-1, M] semantics (t < 0 yields 0).
  double Cum(int64_t t) const {
    if (t < 0) {
      return 0.0;
    }
    if (!mirrored_) {
      return model_->CumulativeAt(t);
    }
    int64_t m = model_->domain_max();
    if (t >= m) {
      return model_->total_weight();
    }
    return model_->total_weight() - model_->CumulativeAt(m - t - 1);
  }

  /// G(t) / G(M); 0 when the model is empty.
  double Prob(int64_t t) const {
    double tot = total();
    return tot > 0.0 ? Cum(t) / tot : 0.0;
  }

  /// Smallest t in [0, M] with G(t) >= target, or M + 1 when none exists.
  int64_t MinValueWithCumAtLeast(double target) const;

  /// Smallest t in [0, M] with Prob(t) >= prob, or M + 1 when none exists.
  int64_t MinValueWithProbAtLeast(double prob) const {
    return MinValueWithCumAtLeast(prob * total());
  }

 private:
  const DistributionModel* model_;
  bool mirrored_;
};

}  // namespace dcv

#endif  // DCV_THRESHOLD_CDF_VIEW_H_
