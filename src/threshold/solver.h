#ifndef DCV_THRESHOLD_SOLVER_H_
#define DCV_THRESHOLD_SOLVER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "threshold/cdf_view.h"

namespace dcv {

/// One variable of the canonical local-threshold selection problem
/// (paper §3.2): weight A_i > 0 and the (possibly mirrored) cumulative
/// frequency view G_i of the site's distribution.
struct ProblemVar {
  int var_id = 0;     ///< Original site/variable index (for reporting).
  int64_t weight = 1; ///< A_i > 0.
  CdfView cdf;        ///< G_i over the canonical variable Y_i in [0, M_i].
};

/// The canonical local-threshold selection problem:
///
///   maximize   prod_i G_i(T_i)
///   subject to sum_i A_i * T_i <= budget,  T_i integer in [0, M_i].
///
/// All solvers consume this form; `Canonicalize` (constraints/canonical.h)
/// reduces arbitrary linear atoms to it.
struct ThresholdProblem {
  std::vector<ProblemVar> vars;
  int64_t budget = 0;  ///< T.
};

/// Validates weights, budget, and distribution totals.
Status ValidateProblem(const ThresholdProblem& problem);

/// A solver's threshold assignment plus its objective value.
struct ThresholdSolution {
  /// T_i aligned with ThresholdProblem::vars, each in [0, M_i].
  std::vector<int64_t> thresholds;

  /// sum_i ln(G_i(T_i)/G_i(M_i)), i.e. the log of the estimated probability
  /// that every local constraint holds; -inf when some factor is zero.
  double log_probability = 0.0;

  /// True when the solver could not find any assignment with positive
  /// probability within the budget and fell back to a clamped Equal-Value
  /// split (covering still holds).
  bool degenerate = false;
};

/// Recomputes the log-probability objective for an arbitrary threshold
/// vector (used by tests and by solvers to fill in solutions).
double LogProbability(const ThresholdProblem& problem,
                      const std::vector<int64_t>& thresholds);

/// True when sum_i A_i * T_i <= budget and every T_i is within [0, M_i].
bool SatisfiesBudget(const ThresholdProblem& problem,
                     const std::vector<int64_t>& thresholds);

/// Interface implemented by every local-threshold selection scheme
/// (FPTAS, exact DP, Equal-Value, Equal-Tail).
class ThresholdSolver {
 public:
  virtual ~ThresholdSolver() = default;

  /// Scheme name for reports ("fptas", "equal-value", ...).
  virtual std::string_view name() const = 0;

  /// Computes thresholds for the canonical problem. Implementations must
  /// return solutions satisfying the budget (covering property).
  virtual Result<ThresholdSolution> Solve(
      const ThresholdProblem& problem) const = 0;

  /// Attaches a metrics registry (null detaches). Instrumented solvers
  /// record wall time and problem-size counters under "solver/<name>/..."
  /// on every Solve. Const (with a mutable member) because schemes hold
  /// `const ThresholdSolver*` yet must be able to wire observability
  /// through at Initialize time; attaching never changes results.
  void set_metrics(obs::MetricsRegistry* metrics) const { metrics_ = metrics; }

 protected:
  mutable obs::MetricsRegistry* metrics_ = nullptr;
};

/// The budget-respecting fallback shared by solvers when no positive-
/// probability assignment exists: an Equal-Value split clamped into domain
/// bounds. Always satisfies the budget.
ThresholdSolution DegenerateFallback(const ThresholdProblem& problem);

/// Greedily spends leftover budget by raising thresholds toward their
/// domain maxima (round-robin). Raising a threshold never decreases any
/// G_i, so the objective is weakly improved and the covering property is
/// preserved; operationally it reduces alarms on values beyond the training
/// data (paper §5.3's "increase the thresholds as long as no inequality is
/// violated", applied to the single-inequality case). In-place.
void RedistributeSlack(const ThresholdProblem& problem,
                       std::vector<int64_t>* thresholds);

}  // namespace dcv

#endif  // DCV_THRESHOLD_SOLVER_H_
