#ifndef DCV_THRESHOLD_FPTAS_H_
#define DCV_THRESHOLD_FPTAS_H_

#include "threshold/solver.h"

namespace dcv {

/// The paper's FPTAS (§4.1, Theorem 2) for local-threshold selection:
/// rounds the per-variable cumulative frequencies to powers of
/// alpha = 1 + eps/2n and solves the resulting knapsack-style DP, giving a
/// (1+eps)-approximation of max prod_i G_i(T_i) s.t. sum A_i T_i <= budget
/// in time polynomial in the input size and 1/eps.
///
/// Implementation note: the paper indexes levels upward from frequency 1
/// (r_i with F_i = alpha^{r_i}); we use the equivalent *deficit* form over
/// normalized probabilities P_i = G_i/G_i(M): level s corresponds to
/// P_i >= alpha^{-s}, I_i(s) = min t with P_i(t) >= alpha^{-s}, and the DP
///
///   D(i, p) = min{ sum_{k<=i} A_k I_k(s_k) : sum_{k<=i} s_k <= p }
///
/// is filled for p = 0..L; the answer is the smallest p with
/// D(n, p) <= budget. Levels with identical I are deduplicated (keeping the
/// smallest deficit), which preserves optimality and bounds the transition
/// fan-out by the number of distinct threshold values. The standard rounding
/// argument gives prod P_i(T_i) >= OPT / alpha^n >= OPT / (1+eps).
class FptasSolver : public ThresholdSolver {
 public:
  struct Options {
    /// Approximation parameter; the result is within (1+eps) of optimal.
    double eps = 0.05;

    /// Threshold values whose per-variable probability is below this floor
    /// are never selected (they would be useless in practice and would blow
    /// up the level count). The approximation guarantee is relative to the
    /// best solution using only probabilities >= prob_floor.
    double prob_floor = 1e-12;

    /// Hard cap on deficit levels per variable.
    int64_t max_levels_per_var = 1'000'000;

    /// Hard cap on DP cells n * (L+1); exceeding it returns
    /// ResourceExhausted instead of thrashing.
    int64_t max_dp_cells = 400'000'000;

    /// Spend leftover budget by raising thresholds toward the domain maxima
    /// (never decreases the objective; see RedistributeSlack). Disable for
    /// the strict textbook algorithm.
    bool redistribute_slack = true;
  };

  /// Per-run diagnostics (sizes the complexity analysis talks about).
  struct Stats {
    /// Largest deficit column the DP explored before stopping (== deficit
    /// when a solution was found; the worst case is L = log_alpha(P-bar)).
    int64_t total_levels = 0;
    int64_t useful_levels = 0;  ///< Deduplicated (s, I) pairs across vars.
    int64_t dp_cells = 0;       ///< n * (explored columns).
    int64_t deficit = 0;        ///< p*: total deficit of the returned
                                ///< solution (-1 when degenerate).
  };

  explicit FptasSolver(Options options) : options_(options) {}
  FptasSolver() : FptasSolver(Options()) {}

  /// Convenience constructor matching the paper's "FPTAS with eps".
  explicit FptasSolver(double eps) : options_(Options{.eps = eps}) {}

  std::string_view name() const override { return "fptas"; }

  Result<ThresholdSolution> Solve(
      const ThresholdProblem& problem) const override {
    Stats stats;
    return SolveWithStats(problem, &stats);
  }

  /// Solve and report diagnostics.
  Result<ThresholdSolution> SolveWithStats(const ThresholdProblem& problem,
                                           Stats* stats) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dcv

#endif  // DCV_THRESHOLD_FPTAS_H_
