#ifndef DCV_THRESHOLD_EXACT_DP_H_
#define DCV_THRESHOLD_EXACT_DP_H_

#include "threshold/solver.h"

namespace dcv {

/// The paper's pseudo-polynomial exact algorithm (§4):
///
///   V_i(S) = max{ prod_{k<=i} G_k(T_k) : sum_{k<=i} A_k T_k <= S }
///   V_i(S) = max_j { G_i(j) * V_{i-1}(S - A_i j) : j in [0, S/A_i] }
///
/// computed in log-space over an (n+1) x (budget+1) table with parent
/// pointers for threshold recovery. O(n T^2) time, O(n T) space; only
/// practical for modest budgets, and therefore mostly used as ground truth
/// for validating the FPTAS (the paper proves the problem NP-hard, Thm 1).
class ExactDpSolver : public ThresholdSolver {
 public:
  struct Options {
    /// Refuse problems whose DP table would exceed this many cells.
    int64_t max_table_cells = 200'000'000;

    /// Spend leftover budget by raising thresholds toward the domain maxima
    /// (never decreases the objective; see RedistributeSlack).
    bool redistribute_slack = true;
  };

  explicit ExactDpSolver(Options options) : options_(options) {}
  ExactDpSolver() : ExactDpSolver(Options()) {}

  std::string_view name() const override { return "exact-dp"; }

  Result<ThresholdSolution> Solve(
      const ThresholdProblem& problem) const override;

 private:
  Options options_;
};

}  // namespace dcv

#endif  // DCV_THRESHOLD_EXACT_DP_H_
