#include "threshold/fptas.h"

#include <cmath>
#include <vector>

#include "common/math_util.h"

namespace dcv {
namespace {

/// One deduplicated deficit level of a variable: choosing it spends
/// `deficit` units of the DP's level budget and sets the threshold to
/// `threshold` (the smallest t with P(t) >= alpha^-deficit).
struct Level {
  int64_t deficit;
  int64_t threshold;
};

/// Lazily-extended level list for one variable. Levels are generated in
/// increasing deficit order and deduplicated on threshold (the smallest
/// deficit per distinct threshold is kept; larger deficits with the same
/// threshold are dominated). Generation stops once the threshold cannot
/// decrease further (t == t_floor) or a cap is hit.
class LevelGenerator {
 public:
  LevelGenerator(const CdfView* cdf, double ln_alpha, double prob_floor,
                 int64_t max_levels)
      : cdf_(cdf), ln_alpha_(ln_alpha), max_levels_(max_levels) {
    // Smallest threshold with probability above the floor: no level below
    // it is ever useful.
    t_floor_ = cdf_->MinValueWithProbAtLeast(prob_floor);
    if (t_floor_ > cdf_->domain_max()) {
      t_floor_ = cdf_->domain_max();
    }
  }

  /// Ensures all levels with deficit <= p are generated.
  void ExtendTo(int64_t p) {
    while (!exhausted_ && next_s_ <= std::min(p, max_levels_)) {
      double target = std::exp(-static_cast<double>(next_s_) * ln_alpha_);
      int64_t t = cdf_->MinValueWithProbAtLeast(target);
      if (t <= cdf_->domain_max() &&
          (levels_.empty() || t < levels_.back().threshold)) {
        if (t <= t_floor_) {
          t = t_floor_;
          exhausted_ = true;  // Cannot decrease further.
        }
        if (levels_.empty() || t < levels_.back().threshold) {
          levels_.push_back(Level{next_s_, t});
        }
      }
      ++next_s_;
    }
    if (next_s_ > max_levels_) {
      exhausted_ = true;
    }
  }

  const std::vector<Level>& levels() const { return levels_; }

 private:
  const CdfView* cdf_;
  double ln_alpha_;
  int64_t max_levels_;
  int64_t t_floor_ = 0;
  int64_t next_s_ = 0;
  bool exhausted_ = false;
  std::vector<Level> levels_;
};

}  // namespace

Result<ThresholdSolution> FptasSolver::SolveWithStats(
    const ThresholdProblem& problem, Stats* stats) const {
  obs::ScopedTimer timer(metrics_ != nullptr
                             ? metrics_->histogram("solver/fptas/solve_us")
                             : nullptr);
  DCV_RETURN_IF_ERROR(ValidateProblem(problem));
  if (options_.eps <= 0.0) {
    return InvalidArgumentError("FPTAS eps must be positive");
  }
  const size_t n = problem.vars.size();
  *stats = Stats{};
  if (n == 0) {
    return ThresholdSolution{};
  }
  const double ln_alpha =
      std::log1p(options_.eps / (2.0 * static_cast<double>(n)));
  // Deficits beyond the floor are never useful: ceil(-ln(floor)/ln(alpha)).
  const int64_t max_deficit = static_cast<int64_t>(
      std::ceil(-std::log(options_.prob_floor) / ln_alpha));
  const int64_t per_var_cap =
      std::min(options_.max_levels_per_var, max_deficit);
  const int64_t natural_cap = static_cast<int64_t>(n) * per_var_cap;
  const int64_t cell_cap = options_.max_dp_cells / static_cast<int64_t>(n);
  const int64_t total_cap = std::min(natural_cap, cell_cap);

  std::vector<LevelGenerator> generators;
  generators.reserve(n);
  for (const ProblemVar& v : problem.vars) {
    generators.emplace_back(&v.cdf, ln_alpha, options_.prob_floor,
                            per_var_cap);
  }

  // Deficit-major DP with early exit (the paper's table filled column by
  // column): dp[i][p] = D(i, p) = min sum_{k<=i} A_k * I_k(s_k) subject to
  // sum s_k <= p. We stop at the first p with D(n, p) <= budget — for
  // well-provisioned budgets this is orders of magnitude below the worst
  // case L = ceil(log_alpha(P-bar)).
  //
  // dp[0] corresponds to zero variables (weight 0); dp[i] to the first i.
  std::vector<std::vector<int64_t>> dp(n + 1);
  std::vector<std::vector<int32_t>> choice(n);

  int64_t p_star = -1;
  for (int64_t p = 0; p <= total_cap; ++p) {
    dp[0].push_back(0);
    for (size_t i = 0; i < n; ++i) {
      const ProblemVar& v = problem.vars[i];
      generators[i].ExtendTo(p);
      const std::vector<Level>& lv = generators[i].levels();
      int64_t best = std::numeric_limits<int64_t>::max();
      int32_t best_level = 0;
      for (size_t k = 0; k < lv.size(); ++k) {
        if (lv[k].deficit > p) {
          break;  // Levels are sorted by deficit.
        }
        int64_t w = v.weight * lv[k].threshold +
                    dp[i][static_cast<size_t>(p - lv[k].deficit)];
        if (w < best) {
          best = w;
          best_level = static_cast<int32_t>(k);
        }
      }
      dp[i + 1].push_back(best);
      choice[i].push_back(best_level);
    }
    if (dp[n].back() <= problem.budget) {
      p_star = p;
      break;
    }
  }

  stats->deficit = p_star;
  for (size_t i = 0; i < n; ++i) {
    stats->useful_levels += static_cast<int64_t>(generators[i].levels().size());
  }
  stats->total_levels = static_cast<int64_t>(dp[1].size()) - 1;
  stats->dp_cells = static_cast<int64_t>(n) *
                    static_cast<int64_t>(dp[1].size());
  if (metrics_ != nullptr) {
    metrics_->counter("solver/fptas/solves")->Increment();
    metrics_->counter("solver/fptas/dp_cells")->Increment(stats->dp_cells);
    metrics_->counter("solver/fptas/levels")->Increment(stats->useful_levels);
    // Size of the rounding grid (explored deficit columns) of the most
    // recent solve — the quantity the 1/eps term of the FPTAS bound scales.
    metrics_->gauge("solver/fptas/rounding_grid")
        ->Set(static_cast<double>(stats->total_levels));
  }

  if (p_star < 0) {
    if (cell_cap < natural_cap) {
      // The search was truncated by the cell budget, not exhausted: report
      // the resource limit instead of silently degrading.
      return ResourceExhaustedError(
          "FPTAS DP exceeded max_dp_cells before finding a feasible "
          "deficit; raise max_dp_cells or eps");
    }
    // No positive-probability assignment fits; fall back (covering holds).
    return DegenerateFallback(problem);
  }

  ThresholdSolution solution;
  solution.thresholds.assign(n, 0);
  int64_t p = p_star;
  for (size_t i = n; i-- > 0;) {
    const Level& lv = generators[i].levels()[static_cast<size_t>(
        choice[i][static_cast<size_t>(p)])];
    solution.thresholds[i] = lv.threshold;
    p -= lv.deficit;
  }
  if (options_.redistribute_slack) {
    RedistributeSlack(problem, &solution.thresholds);
  }
  solution.log_probability = LogProbability(problem, solution.thresholds);
  return solution;
}

}  // namespace dcv
