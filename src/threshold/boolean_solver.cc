#include "threshold/boolean_solver.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace dcv {
namespace {

// True when the atom holds for every assignment in [0, M]^n: its maximal
// left-hand side (all canonical variables at their domain max) fits.
bool AlwaysHolds(const CanonicalIneq& ineq,
                 const std::vector<int64_t>& domain_max) {
  int64_t max_lhs = 0;
  for (const CanonicalIneq::Term& t : ineq.terms) {
    max_lhs += t.coef * domain_max[static_cast<size_t>(t.var)];
  }
  return max_lhs <= ineq.bound;
}

// Left-hand side of the canonical atom at the box's extreme point.
int64_t ExtremeLhs(const CanonicalIneq& ineq,
                   const std::vector<SiteBounds>& bounds,
                   const std::vector<int64_t>& domain_max) {
  int64_t lhs = 0;
  for (const CanonicalIneq::Term& t : ineq.terms) {
    size_t v = static_cast<size_t>(t.var);
    int64_t y = t.mirrored ? domain_max[v] - bounds[v].lo : bounds[v].hi;
    lhs += t.coef * y;
  }
  return lhs;
}

// Log-probability that X_v lies in bounds[v] for every v, under the
// independence assumption.
double BoundsLogProbability(const std::vector<SiteBounds>& bounds,
                            const std::vector<const DistributionModel*>& models) {
  double log_prob = 0.0;
  for (size_t v = 0; v < bounds.size(); ++v) {
    const DistributionModel* m = models[v];
    double total = m->total_weight();
    if (total <= 0.0) {
      return kNegInf;
    }
    if (bounds[v].empty()) {
      return kNegInf;
    }
    double mass = m->CumulativeAt(bounds[v].hi) -
                  m->CumulativeAt(bounds[v].lo - 1);
    log_prob += SafeLog(mass / total);
  }
  return log_prob;
}

}  // namespace

Result<ThresholdProblem> MakeProblem(
    const CanonicalIneq& ineq,
    const std::vector<const DistributionModel*>& models) {
  ThresholdProblem problem;
  problem.budget = ineq.bound;
  for (const CanonicalIneq::Term& t : ineq.terms) {
    if (t.var < 0 || static_cast<size_t>(t.var) >= models.size() ||
        models[static_cast<size_t>(t.var)] == nullptr) {
      return InvalidArgumentError("no distribution model for variable x" +
                                  std::to_string(t.var));
    }
    problem.vars.push_back(ProblemVar{
        t.var, t.coef,
        CdfView(models[static_cast<size_t>(t.var)], t.mirrored)});
  }
  return problem;
}

bool BoundsCover(const std::vector<Clause>& clauses,
                 const std::vector<std::vector<CanonicalIneq>>& canonical,
                 const std::vector<SiteBounds>& bounds,
                 const std::vector<int64_t>& domain_max) {
  for (size_t j = 0; j < clauses.size(); ++j) {
    bool clause_covered = false;
    for (const CanonicalIneq& ineq : canonical[j]) {
      if (ineq.IsTriviallyFalse()) {
        continue;
      }
      if (ExtremeLhs(ineq, bounds, domain_max) <= ineq.bound) {
        clause_covered = true;
        break;
      }
    }
    if (!clause_covered) {
      return false;
    }
  }
  return true;
}

Result<BooleanSolution> BooleanThresholdSolver::Solve(
    const CnfConstraint& cnf,
    const std::vector<const DistributionModel*>& models) const {
  obs::ScopedTimer timer(metrics_ != nullptr
                             ? metrics_->histogram("solver/boolean/solve_us")
                             : nullptr);
  obs::Counter* subproblems =
      metrics_ != nullptr ? metrics_->counter("solver/boolean/subproblems")
                          : nullptr;
  const size_t n = models.size();
  for (size_t v = 0; v < n; ++v) {
    if (models[v] == nullptr) {
      return InvalidArgumentError("null distribution model for variable x" +
                                  std::to_string(v));
    }
  }
  if (cnf.max_var() >= static_cast<int>(n)) {
    return InvalidArgumentError(
        "constraint references variable x" + std::to_string(cnf.max_var()) +
        " but only " + std::to_string(n) + " models were supplied");
  }
  std::vector<int64_t> domain_max(n);
  for (size_t v = 0; v < n; ++v) {
    domain_max[v] = models[v]->domain_max();
  }

  // Canonicalize every atom of every clause.
  std::vector<std::vector<CanonicalIneq>> canonical(cnf.clauses.size());
  for (size_t j = 0; j < cnf.clauses.size(); ++j) {
    canonical[j].reserve(cnf.clauses[j].atoms.size());
    for (const LinearAtom& atom : cnf.clauses[j].atoms) {
      DCV_ASSIGN_OR_RETURN(CanonicalIneq ineq,
                           Canonicalize(atom, domain_max));
      canonical[j].push_back(std::move(ineq));
    }
  }

  BooleanSolution out;
  out.bounds.assign(n, SiteBounds{0, 0});
  for (size_t v = 0; v < n; ++v) {
    out.bounds[v] = SiteBounds{0, domain_max[v]};  // Unconstrained.
  }
  out.chosen_disjunct.assign(cnf.clauses.size(), -1);

  // §5.2 per clause: solve each disjunct, keep the best product.
  for (size_t j = 0; j < cnf.clauses.size(); ++j) {
    // A clause containing an always-true atom imposes nothing.
    bool clause_trivial = false;
    for (const CanonicalIneq& ineq : canonical[j]) {
      if (AlwaysHolds(ineq, domain_max)) {
        clause_trivial = true;
        break;
      }
    }
    if (clause_trivial) {
      continue;
    }

    double best_log_prob = kNegInf;
    bool have_choice = false;
    int best_k = -1;
    ThresholdSolution best_solution;
    for (size_t k = 0; k < canonical[j].size(); ++k) {
      const CanonicalIneq& ineq = canonical[j][k];
      if (ineq.IsTriviallyFalse()) {
        continue;  // This disjunct can never be guaranteed by thresholds.
      }
      DCV_ASSIGN_OR_RETURN(ThresholdProblem problem,
                           MakeProblem(ineq, models));
      DCV_OBS_COUNT(subproblems, 1);
      DCV_ASSIGN_OR_RETURN(ThresholdSolution sol, base_->Solve(problem));
      if (!have_choice || sol.log_probability > best_log_prob) {
        have_choice = true;
        best_log_prob = sol.log_probability;
        best_k = static_cast<int>(k);
        best_solution = std::move(sol);
      }
    }
    if (!have_choice) {
      return InfeasibleError(
          "clause " + std::to_string(j) +
          " has no satisfiable disjunct: the global constraint is "
          "unsatisfiable, so every state is a violation");
    }
    out.chosen_disjunct[j] = best_k;
    out.degenerate = out.degenerate || best_solution.degenerate;

    // §5.3 merge: intersect the clause's bounds into the running bounds.
    const CanonicalIneq& chosen = canonical[j][static_cast<size_t>(best_k)];
    for (size_t t = 0; t < chosen.terms.size(); ++t) {
      const CanonicalIneq::Term& term = chosen.terms[t];
      size_t v = static_cast<size_t>(term.var);
      int64_t threshold = best_solution.thresholds[t];
      if (term.mirrored) {
        out.bounds[v].lo =
            std::max(out.bounds[v].lo, domain_max[v] - threshold);
      } else {
        out.bounds[v].hi = std::min(out.bounds[v].hi, threshold);
      }
    }
  }

  // §5.3/5.4 lift: widen bounds while the covering check still passes.
  obs::Counter* lift_rounds =
      metrics_ != nullptr ? metrics_->counter("solver/boolean/lift_rounds")
                          : nullptr;
  for (int round = 0; round < options_.lift_rounds; ++round) {
    bool changed = false;
    DCV_OBS_COUNT(lift_rounds, 1);
    for (size_t v = 0; v < n; ++v) {
      // Widen hi by binary search over the largest feasible value.
      if (out.bounds[v].hi < domain_max[v] && !out.bounds[v].empty()) {
        int64_t lo = out.bounds[v].hi;
        int64_t hi = domain_max[v];
        while (lo < hi) {
          int64_t mid = hi - (hi - lo) / 2;  // Round up -> progress.
          std::vector<SiteBounds> trial = out.bounds;
          trial[v].hi = mid;
          if (BoundsCover(cnf.clauses, canonical, trial, domain_max)) {
            lo = mid;
          } else {
            hi = mid - 1;
          }
        }
        if (lo > out.bounds[v].hi) {
          out.bounds[v].hi = lo;
          changed = true;
        }
      }
      // Widen lo downward symmetrically.
      if (out.bounds[v].lo > 0 && !out.bounds[v].empty()) {
        int64_t lo = 0;
        int64_t hi = out.bounds[v].lo;
        while (lo < hi) {
          int64_t mid = lo + (hi - lo) / 2;  // Round down -> progress.
          std::vector<SiteBounds> trial = out.bounds;
          trial[v].lo = mid;
          if (BoundsCover(cnf.clauses, canonical, trial, domain_max)) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        if (hi < out.bounds[v].lo) {
          out.bounds[v].lo = hi;
          changed = true;
        }
      }
    }
    if (!changed) {
      break;
    }
  }

  out.log_probability = BoundsLogProbability(out.bounds, models);
  if (out.log_probability == kNegInf) {
    out.degenerate = true;
  }
  return out;
}

}  // namespace dcv
