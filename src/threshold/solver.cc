#include "threshold/solver.h"

#include "common/math_util.h"

namespace dcv {

Status ValidateProblem(const ThresholdProblem& problem) {
  if (problem.budget < 0) {
    return InvalidArgumentError("threshold budget must be non-negative");
  }
  for (const ProblemVar& v : problem.vars) {
    if (v.weight <= 0) {
      return InvalidArgumentError(
          "canonical problem requires positive weights (variable " +
          std::to_string(v.var_id) + ")");
    }
    if (v.cdf.model() == nullptr) {
      return InvalidArgumentError("variable " + std::to_string(v.var_id) +
                                  " has no distribution model");
    }
    if (v.cdf.total() <= 0.0) {
      return FailedPreconditionError(
          "variable " + std::to_string(v.var_id) +
          " has an empty distribution model (no observations)");
    }
    if (v.cdf.domain_max() < 0) {
      return InvalidArgumentError("variable " + std::to_string(v.var_id) +
                                  " has negative domain_max");
    }
  }
  return OkStatus();
}

double LogProbability(const ThresholdProblem& problem,
                      const std::vector<int64_t>& thresholds) {
  double log_prob = 0.0;
  for (size_t i = 0; i < problem.vars.size(); ++i) {
    const ProblemVar& v = problem.vars[i];
    log_prob += SafeLog(v.cdf.Prob(thresholds[i]));
  }
  return log_prob;
}

bool SatisfiesBudget(const ThresholdProblem& problem,
                     const std::vector<int64_t>& thresholds) {
  if (thresholds.size() != problem.vars.size()) {
    return false;
  }
  int64_t used = 0;
  for (size_t i = 0; i < problem.vars.size(); ++i) {
    const ProblemVar& v = problem.vars[i];
    if (thresholds[i] < 0 || thresholds[i] > v.cdf.domain_max()) {
      return false;
    }
    used += v.weight * thresholds[i];
  }
  return used <= problem.budget;
}

void RedistributeSlack(const ThresholdProblem& problem,
                       std::vector<int64_t>* thresholds) {
  int64_t used = 0;
  for (size_t i = 0; i < problem.vars.size(); ++i) {
    used += problem.vars[i].weight * (*thresholds)[i];
  }
  int64_t slack = problem.budget - used;
  // Round-robin until no variable can absorb more slack.
  bool progress = true;
  while (slack > 0 && progress) {
    progress = false;
    for (size_t i = 0; i < problem.vars.size() && slack > 0; ++i) {
      const ProblemVar& v = problem.vars[i];
      int64_t headroom = v.cdf.domain_max() - (*thresholds)[i];
      if (headroom <= 0) {
        continue;
      }
      int64_t grant = std::min(headroom, slack / v.weight);
      if (grant <= 0) {
        continue;
      }
      (*thresholds)[i] += grant;
      slack -= grant * v.weight;
      progress = true;
    }
  }
}

ThresholdSolution DegenerateFallback(const ThresholdProblem& problem) {
  ThresholdSolution solution;
  solution.degenerate = true;
  if (problem.vars.empty()) {
    return solution;
  }
  int64_t n = static_cast<int64_t>(problem.vars.size());
  solution.thresholds.reserve(problem.vars.size());
  for (const ProblemVar& v : problem.vars) {
    int64_t t = problem.budget / (n * v.weight);
    solution.thresholds.push_back(Clamp<int64_t>(t, 0, v.cdf.domain_max()));
  }
  solution.log_probability = LogProbability(problem, solution.thresholds);
  return solution;
}

}  // namespace dcv
