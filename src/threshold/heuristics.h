#ifndef DCV_THRESHOLD_HEURISTICS_H_
#define DCV_THRESHOLD_HEURISTICS_H_

#include "threshold/solver.h"

namespace dcv {

/// The data-distribution-agnostic baseline (paper §6.1; called Simple-Value
/// in Dilman & Raz): splits the global budget equally, T_i = budget/(n*A_i).
/// Good only when all sites are uniformly and identically loaded.
class EqualValueSolver : public ThresholdSolver {
 public:
  std::string_view name() const override { return "equal-value"; }

  Result<ThresholdSolution> Solve(
      const ThresholdProblem& problem) const override;
};

/// The Equal-Tail heuristic (paper §6.1): uses the per-site distributions
/// but equalizes the *individual* violation probabilities
/// 1 - P_i(T_i) across sites (instead of maximizing the joint probability),
/// choosing the largest common quantile level q such that the q-quantiles
/// still fit the budget. Binary search over q.
class EqualTailSolver : public ThresholdSolver {
 public:
  struct Options {
    int search_iterations = 60;  ///< Bisection steps over q in [0, 1].
  };

  explicit EqualTailSolver(Options options) : options_(options) {}
  EqualTailSolver() : EqualTailSolver(Options()) {}

  std::string_view name() const override { return "equal-tail"; }

  Result<ThresholdSolution> Solve(
      const ThresholdProblem& problem) const override;

 private:
  Options options_;
};

}  // namespace dcv

#endif  // DCV_THRESHOLD_HEURISTICS_H_
