#include "threshold/heuristics.h"

#include <vector>

#include "common/math_util.h"

namespace dcv {

Result<ThresholdSolution> EqualValueSolver::Solve(
    const ThresholdProblem& problem) const {
  DCV_RETURN_IF_ERROR(ValidateProblem(problem));
  ThresholdSolution solution;
  if (problem.vars.empty()) {
    return solution;
  }
  int64_t n = static_cast<int64_t>(problem.vars.size());
  solution.thresholds.reserve(problem.vars.size());
  for (const ProblemVar& v : problem.vars) {
    int64_t t = problem.budget / (n * v.weight);
    solution.thresholds.push_back(Clamp<int64_t>(t, 0, v.cdf.domain_max()));
  }
  solution.log_probability = LogProbability(problem, solution.thresholds);
  solution.degenerate = solution.log_probability == kNegInf;
  return solution;
}

namespace {

// Thresholds at quantile level q (smallest t with P_i(t) >= q), clamped to
// the domain; fills `used` with the weighted sum.
std::vector<int64_t> QuantileThresholds(const ThresholdProblem& problem,
                                        double q, int64_t* used) {
  std::vector<int64_t> thresholds;
  thresholds.reserve(problem.vars.size());
  *used = 0;
  for (const ProblemVar& v : problem.vars) {
    int64_t t = v.cdf.MinValueWithProbAtLeast(q);
    t = Clamp<int64_t>(t, 0, v.cdf.domain_max());
    thresholds.push_back(t);
    *used += v.weight * t;
  }
  return thresholds;
}

}  // namespace

Result<ThresholdSolution> EqualTailSolver::Solve(
    const ThresholdProblem& problem) const {
  DCV_RETURN_IF_ERROR(ValidateProblem(problem));
  ThresholdSolution solution;
  if (problem.vars.empty()) {
    return solution;
  }
  // Largest feasible q by bisection; the weighted quantile sum is
  // non-decreasing in q.
  double lo = 0.0;
  double hi = 1.0;
  int64_t used = 0;
  std::vector<int64_t> at_hi = QuantileThresholds(problem, hi, &used);
  if (used <= problem.budget) {
    lo = hi;  // Even the full-coverage quantile fits.
  } else {
    for (int iter = 0; iter < options_.search_iterations; ++iter) {
      double mid = 0.5 * (lo + hi);
      QuantileThresholds(problem, mid, &used);
      if (used <= problem.budget) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  solution.thresholds = QuantileThresholds(problem, lo, &used);
  // lo is always feasible: at q=0 every threshold is 0.
  solution.log_probability = LogProbability(problem, solution.thresholds);
  solution.degenerate = solution.log_probability == kNegInf;
  return solution;
}

}  // namespace dcv
