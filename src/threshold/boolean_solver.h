#ifndef DCV_THRESHOLD_BOOLEAN_SOLVER_H_
#define DCV_THRESHOLD_BOOLEAN_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/canonical.h"
#include "constraints/normalize.h"
#include "histogram/distribution.h"
#include "threshold/solver.h"

namespace dcv {

/// The local constraint installed at one site for boolean global
/// constraints: lo <= X <= hi. One-sided constraints use lo = 0 or
/// hi = M. An empty interval (lo > hi) means "always alarm".
struct SiteBounds {
  int64_t lo = 0;
  int64_t hi = 0;

  bool Contains(int64_t x) const { return lo <= x && x <= hi; }
  bool empty() const { return lo > hi; }

  friend bool operator==(const SiteBounds&, const SiteBounds&) = default;
};

/// Result of boolean threshold selection: per-variable local bounds plus
/// the estimated log-probability that all of them hold.
struct BooleanSolution {
  std::vector<SiteBounds> bounds;     ///< Indexed by variable.
  double log_probability = 0.0;
  bool degenerate = false;
  /// For each CNF clause: index of the disjunct whose solution was selected
  /// (paper §5.2: the j* maximizing the product), or -1 for clauses that are
  /// trivially satisfied and impose nothing.
  std::vector<int> chosen_disjunct;
};

/// Builds the canonical ThresholdProblem for a single canonical inequality:
/// one ProblemVar per term, with a mirrored CdfView where the term is
/// mirrored, and budget = bound. models[var] supplies each variable's
/// distribution.
Result<ThresholdProblem> MakeProblem(
    const CanonicalIneq& ineq,
    const std::vector<const DistributionModel*>& models);

/// Checks the clause-wise covering property for a bounds vector: every
/// clause must contain an atom that holds at the extreme point of the box
/// (hi for unmirrored terms, M - lo for mirrored ones). Because canonical
/// coefficients are positive, this is sufficient for
/// (all locals hold) -> (global holds).
bool BoundsCover(const std::vector<Clause>& clauses,
                 const std::vector<std::vector<CanonicalIneq>>& canonical,
                 const std::vector<SiteBounds>& bounds,
                 const std::vector<int64_t>& domain_max);

/// Threshold selection for general boolean constraints in CNF
/// ∧_j (∨_k E_jk <= T̂_jk) (paper §5.2-5.4):
///
///   1. Per clause, run the base solver on every disjunct and keep the
///      disjunct with the highest product (§5.2; an FPTAS for pure
///      disjunctions, Lemma 3 / Theorem 4).
///   2. Combine clauses by intersecting bounds, T_i = min_j T_ij (§5.3;
///      pure conjunctions are NP-hard to approximate, Theorem 5, so this is
///      a heuristic).
///   3. Lift: greedily widen per-variable bounds while the covering check
///      still passes (§5.3's "increase thresholds while no inequality is
///      violated", strengthened to per-variable binary search).
class BooleanThresholdSolver {
 public:
  struct Options {
    /// Rounds of round-robin bound lifting (0 disables lifting).
    int lift_rounds = 4;
  };

  /// `base` must outlive this solver.
  BooleanThresholdSolver(const ThresholdSolver* base, Options options)
      : base_(base), options_(options) {}
  explicit BooleanThresholdSolver(const ThresholdSolver* base)
      : BooleanThresholdSolver(base, Options()) {}

  /// Solves for local bounds. models[v] is variable v's distribution and
  /// defines M_v; every variable referenced by `cnf` must have a model.
  Result<BooleanSolution> Solve(
      const CnfConstraint& cnf,
      const std::vector<const DistributionModel*>& models) const;

  /// Attaches a metrics registry to this solver AND its base solver (null
  /// detaches both). Solve then records wall time, per-disjunct subproblem
  /// counts, and lift rounds under "solver/boolean/...".
  void set_metrics(obs::MetricsRegistry* metrics) const {
    metrics_ = metrics;
    base_->set_metrics(metrics);
  }

 private:
  const ThresholdSolver* base_;
  Options options_;
  mutable obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace dcv

#endif  // DCV_THRESHOLD_BOOLEAN_SOLVER_H_
