#include "threshold/cdf_view.h"

namespace dcv {

int64_t CdfView::MinValueWithCumAtLeast(double target) const {
  int64_t m = domain_max();
  if (Cum(m) < target) {
    return m + 1;
  }
  if (!mirrored_) {
    return model_->MinValueWithCumAtLeast(target);
  }
  int64_t lo = 0;
  int64_t hi = m;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (Cum(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace dcv
