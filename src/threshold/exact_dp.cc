#include "threshold/exact_dp.h"

#include <vector>

#include "common/math_util.h"

namespace dcv {

Result<ThresholdSolution> ExactDpSolver::Solve(
    const ThresholdProblem& problem) const {
  obs::ScopedTimer timer(
      metrics_ != nullptr ? metrics_->histogram("solver/exact_dp/solve_us")
                          : nullptr);
  DCV_RETURN_IF_ERROR(ValidateProblem(problem));
  const size_t n = problem.vars.size();
  if (n == 0) {
    return ThresholdSolution{};
  }
  const int64_t budget = problem.budget;
  const int64_t width = budget + 1;
  if (static_cast<int64_t>(n) * width > options_.max_table_cells) {
    return ResourceExhaustedError(
        "exact DP table would need " +
        std::to_string(static_cast<int64_t>(n) * width) +
        " cells; budget too large for the pseudo-polynomial algorithm");
  }
  if (metrics_ != nullptr) {
    metrics_->counter("solver/exact_dp/solves")->Increment();
    metrics_->counter("solver/exact_dp/table_cells")
        ->Increment(static_cast<int64_t>(n) * width);
  }

  // prev[S] = best log product over the first i variables using weight <= S.
  std::vector<double> prev(static_cast<size_t>(width), 0.0);
  std::vector<double> cur(static_cast<size_t>(width), kNegInf);
  // choice[i][S] = threshold T_{i+1} picked at state (i+1, S).
  std::vector<std::vector<int64_t>> choice(
      n, std::vector<int64_t>(static_cast<size_t>(width), 0));

  for (size_t i = 0; i < n; ++i) {
    const ProblemVar& v = problem.vars[i];
    const int64_t m = v.cdf.domain_max();
    const double total = v.cdf.total();
    for (int64_t s = 0; s <= budget; ++s) {
      double best = kNegInf;
      int64_t best_j = 0;
      const int64_t j_max = std::min(m, s / v.weight);
      for (int64_t j = 0; j <= j_max; ++j) {
        double lp = SafeLog(v.cdf.Cum(j) / total) +
                    prev[static_cast<size_t>(s - v.weight * j)];
        if (lp > best) {
          best = lp;
          best_j = j;
        }
      }
      cur[static_cast<size_t>(s)] = best;
      choice[i][static_cast<size_t>(s)] = best_j;
    }
    std::swap(prev, cur);
  }

  ThresholdSolution solution;
  solution.thresholds.assign(n, 0);
  int64_t s = budget;
  for (size_t i = n; i-- > 0;) {
    int64_t j = choice[i][static_cast<size_t>(s)];
    solution.thresholds[i] = j;
    s -= problem.vars[i].weight * j;
  }
  if (options_.redistribute_slack) {
    RedistributeSlack(problem, &solution.thresholds);
  }
  solution.log_probability = LogProbability(problem, solution.thresholds);
  if (solution.log_probability == kNegInf) {
    // Even the best assignment has zero estimated probability; keep the
    // covering thresholds but flag it.
    solution.degenerate = true;
  }
  return solution;
}

}  // namespace dcv
