#include "constraints/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace dcv {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kMin:
      return "MIN";
    case TokenKind::kMax:
      return "MAX";
    case TokenKind::kSum:
      return "SUM";
    case TokenKind::kAnd:
      return "'&&'";
    case TokenKind::kOr:
      return "'||'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      std::string lit = text.substr(i, j - i);
      DCV_ASSIGN_OR_RETURN(int64_t value, ParseInt64(lit));
      tokens.push_back(Token{TokenKind::kInt, lit, value, start});
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      std::string word = text.substr(i, j - i);
      std::string upper = ToUpper(word);
      TokenKind kind = TokenKind::kIdent;
      if (upper == "MIN") {
        kind = TokenKind::kMin;
      } else if (upper == "MAX") {
        kind = TokenKind::kMax;
      } else if (upper == "SUM") {
        kind = TokenKind::kSum;
      } else if (upper == "AND") {
        kind = TokenKind::kAnd;
      } else if (upper == "OR") {
        kind = TokenKind::kOr;
      }
      tokens.push_back(Token{kind, word, 0, start});
      i = j;
      continue;
    }
    switch (c) {
      case '&':
        if (i + 1 < text.size() && text[i + 1] == '&') {
          tokens.push_back(Token{TokenKind::kAnd, "&&", 0, start});
          i += 2;
          continue;
        }
        return InvalidArgumentError("stray '&' at offset " +
                                    std::to_string(start));
      case '|':
        if (i + 1 < text.size() && text[i + 1] == '|') {
          tokens.push_back(Token{TokenKind::kOr, "||", 0, start});
          i += 2;
          continue;
        }
        return InvalidArgumentError("stray '|' at offset " +
                                    std::to_string(start));
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(Token{TokenKind::kLe, "<=", 0, start});
          i += 2;
          continue;
        }
        return InvalidArgumentError(
            "strict '<' is not supported (use '<=') at offset " +
            std::to_string(start));
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back(Token{TokenKind::kGe, ">=", 0, start});
          i += 2;
          continue;
        }
        return InvalidArgumentError(
            "strict '>' is not supported (use '>=') at offset " +
            std::to_string(start));
      case '+':
        tokens.push_back(Token{TokenKind::kPlus, "+", 0, start});
        break;
      case '-':
        tokens.push_back(Token{TokenKind::kMinus, "-", 0, start});
        break;
      case '*':
        tokens.push_back(Token{TokenKind::kStar, "*", 0, start});
        break;
      case '(':
        tokens.push_back(Token{TokenKind::kLParen, "(", 0, start});
        break;
      case ')':
        tokens.push_back(Token{TokenKind::kRParen, ")", 0, start});
        break;
      case '{':
        tokens.push_back(Token{TokenKind::kLBrace, "{", 0, start});
        break;
      case '}':
        tokens.push_back(Token{TokenKind::kRBrace, "}", 0, start});
        break;
      case ',':
        tokens.push_back(Token{TokenKind::kComma, ",", 0, start});
        break;
      default:
        return InvalidArgumentError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(start));
    }
    ++i;
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, text.size()});
  return tokens;
}

}  // namespace dcv
