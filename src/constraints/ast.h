#ifndef DCV_CONSTRAINTS_AST_H_
#define DCV_CONSTRAINTS_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/linear_expr.h"

namespace dcv {

/// Comparison operator of an atomic condition (paper §3.1 restricts op to
/// <= and >=).
enum class CmpOp { kLe, kGe };

std::string_view CmpOpName(CmpOp op);

/// An aggregate expression (paper §3.1): either a linear expression, or
/// SUM / MIN / MAX applied to child aggregate expressions, recursively.
/// Value-semantic tree.
class AggExpr {
 public:
  enum class Kind { kLinear, kSum, kMin, kMax };

  /// Leaf: a linear expression (covers the paper's A_i*X_i terms and sums
  /// thereof).
  static AggExpr Linear(LinearExpr expr);

  /// SUM{children} (== children[0] + children[1] + ...). Needs >= 1 child.
  static AggExpr Sum(std::vector<AggExpr> children);

  /// MIN{children}. Needs >= 1 child.
  static AggExpr Min(std::vector<AggExpr> children);

  /// MAX{children}. Needs >= 1 child.
  static AggExpr Max(std::vector<AggExpr> children);

  Kind kind() const { return kind_; }
  const LinearExpr& linear() const { return linear_; }
  const std::vector<AggExpr>& children() const { return children_; }

  /// Evaluates on a full assignment of the site variables.
  int64_t Evaluate(const std::vector<int64_t>& assignment) const;

  /// Largest variable index referenced, or -1.
  int max_var() const;

  /// Total node count (used by the normalizer's blow-up guard).
  size_t NodeCount() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  AggExpr() = default;

  Kind kind_ = Kind::kLinear;
  LinearExpr linear_;
  std::vector<AggExpr> children_;
};

/// A boolean constraint over atomic conditions `agg_expr op threshold`,
/// closed under conjunction and disjunction (paper §3.1). Value-semantic
/// tree. The *global constraint* G of the paper is one of these; G holding
/// means the system is in a normal state.
class BoolExpr {
 public:
  enum class Kind { kAtom, kAnd, kOr };

  /// Atomic condition: `agg op threshold`.
  static BoolExpr Atom(AggExpr agg, CmpOp op, int64_t threshold);

  /// Conjunction; needs >= 1 child.
  static BoolExpr And(std::vector<BoolExpr> children);

  /// Disjunction; needs >= 1 child.
  static BoolExpr Or(std::vector<BoolExpr> children);

  Kind kind() const { return kind_; }
  const AggExpr& agg() const { return agg_; }
  CmpOp op() const { return op_; }
  int64_t threshold() const { return threshold_; }
  const std::vector<BoolExpr>& children() const { return children_; }

  bool Evaluate(const std::vector<int64_t>& assignment) const;

  int max_var() const;

  size_t NodeCount() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;

 private:
  BoolExpr() = default;

  Kind kind_ = Kind::kAtom;
  AggExpr agg_ = AggExpr::Linear(LinearExpr());
  CmpOp op_ = CmpOp::kLe;
  int64_t threshold_ = 0;
  std::vector<BoolExpr> children_;
};

}  // namespace dcv

#endif  // DCV_CONSTRAINTS_AST_H_
