#ifndef DCV_CONSTRAINTS_NORMALIZE_H_
#define DCV_CONSTRAINTS_NORMALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/ast.h"

namespace dcv {

/// An atomic linear condition `expr op threshold` with a purely linear
/// left-hand side — the leaves of the paper's boolean constraint form
/// ∧_j (∨_k E_{j,k} ≤ T̂_{j,k}) (§5).
struct LinearAtom {
  LinearExpr expr;
  CmpOp op = CmpOp::kLe;
  int64_t threshold = 0;

  bool Evaluate(const std::vector<int64_t>& assignment) const {
    int64_t v = expr.Evaluate(assignment);
    return op == CmpOp::kLe ? v <= threshold : v >= threshold;
  }

  std::string ToString(const std::vector<std::string>* names = nullptr) const;
};

/// A disjunction of linear atoms.
struct Clause {
  std::vector<LinearAtom> atoms;

  bool Evaluate(const std::vector<int64_t>& assignment) const {
    for (const LinearAtom& a : atoms) {
      if (a.Evaluate(assignment)) {
        return true;
      }
    }
    return false;
  }
};

/// Conjunctive normal form of a global constraint: AND over clauses, each a
/// disjunction of linear atoms. This is the input format of the boolean
/// threshold solver (§5.4).
struct CnfConstraint {
  std::vector<Clause> clauses;

  bool Evaluate(const std::vector<int64_t>& assignment) const {
    for (const Clause& c : clauses) {
      if (!c.Evaluate(assignment)) {
        return false;
      }
    }
    return true;
  }

  /// Largest variable index referenced, or -1.
  int max_var() const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;
};

/// Blow-up guards for the (worst-case exponential, §5.1) rewrites.
struct NormalizeOptions {
  size_t max_nodes = 200000;         ///< Cap on intermediate tree size.
  size_t max_clauses = 100000;       ///< Cap on CNF clause count.
  size_t max_atoms_per_clause = 10000;
};

/// Pushes SUM inside MIN/MAX (paper §5.1: A + MIN{B, C} == MIN{A+B, A+C}),
/// returning an equivalent tree whose internal nodes are only MIN/MAX and
/// whose leaves are linear. Fails with ResourceExhausted when the rewrite
/// exceeds options.max_nodes.
Result<AggExpr> PushSumsInside(const AggExpr& expr,
                               const NormalizeOptions& options = {});

/// Rewrites every atom's MIN/MAX into conjunctions/disjunctions
/// (MIN{A,B} <= T  ==  A<=T || B<=T;  MAX{A,B} <= T  ==  A<=T && B<=T; the
/// duals hold for >=), returning a boolean tree whose atoms are all linear.
Result<BoolExpr> EliminateMinMax(const BoolExpr& expr,
                                 const NormalizeOptions& options = {});

/// Full pipeline: EliminateMinMax then distribute to CNF. The result
/// evaluates identically to `expr` on every assignment.
Result<CnfConstraint> ToCnf(const BoolExpr& expr,
                            const NormalizeOptions& options = {});

}  // namespace dcv

#endif  // DCV_CONSTRAINTS_NORMALIZE_H_
