#include "constraints/ast.h"

#include <algorithm>

#include "common/logging.h"

namespace dcv {

std::string_view CmpOpName(CmpOp op) {
  return op == CmpOp::kLe ? "<=" : ">=";
}

AggExpr AggExpr::Linear(LinearExpr expr) {
  AggExpr e;
  e.kind_ = Kind::kLinear;
  e.linear_ = std::move(expr);
  return e;
}

AggExpr AggExpr::Sum(std::vector<AggExpr> children) {
  DCV_CHECK(!children.empty()) << "SUM needs at least one child";
  AggExpr e;
  e.kind_ = Kind::kSum;
  e.children_ = std::move(children);
  return e;
}

AggExpr AggExpr::Min(std::vector<AggExpr> children) {
  DCV_CHECK(!children.empty()) << "MIN needs at least one child";
  AggExpr e;
  e.kind_ = Kind::kMin;
  e.children_ = std::move(children);
  return e;
}

AggExpr AggExpr::Max(std::vector<AggExpr> children) {
  DCV_CHECK(!children.empty()) << "MAX needs at least one child";
  AggExpr e;
  e.kind_ = Kind::kMax;
  e.children_ = std::move(children);
  return e;
}

int64_t AggExpr::Evaluate(const std::vector<int64_t>& assignment) const {
  switch (kind_) {
    case Kind::kLinear:
      return linear_.Evaluate(assignment);
    case Kind::kSum: {
      int64_t total = 0;
      for (const AggExpr& c : children_) {
        total += c.Evaluate(assignment);
      }
      return total;
    }
    case Kind::kMin: {
      int64_t best = children_.front().Evaluate(assignment);
      for (size_t i = 1; i < children_.size(); ++i) {
        best = std::min(best, children_[i].Evaluate(assignment));
      }
      return best;
    }
    case Kind::kMax: {
      int64_t best = children_.front().Evaluate(assignment);
      for (size_t i = 1; i < children_.size(); ++i) {
        best = std::max(best, children_[i].Evaluate(assignment));
      }
      return best;
    }
  }
  return 0;
}

int AggExpr::max_var() const {
  if (kind_ == Kind::kLinear) {
    return linear_.max_var();
  }
  int best = -1;
  for (const AggExpr& c : children_) {
    best = std::max(best, c.max_var());
  }
  return best;
}

size_t AggExpr::NodeCount() const {
  size_t count = 1;
  for (const AggExpr& c : children_) {
    count += c.NodeCount();
  }
  return count;
}

std::string AggExpr::ToString(const std::vector<std::string>* names) const {
  switch (kind_) {
    case Kind::kLinear:
      return linear_.ToString(names);
    case Kind::kSum:
    case Kind::kMin:
    case Kind::kMax: {
      std::string out = kind_ == Kind::kSum ? "SUM{"
                        : kind_ == Kind::kMin ? "MIN{"
                                              : "MAX{";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += children_[i].ToString(names);
      }
      out += "}";
      return out;
    }
  }
  return "";
}

BoolExpr BoolExpr::Atom(AggExpr agg, CmpOp op, int64_t threshold) {
  BoolExpr e;
  e.kind_ = Kind::kAtom;
  e.agg_ = std::move(agg);
  e.op_ = op;
  e.threshold_ = threshold;
  return e;
}

BoolExpr BoolExpr::And(std::vector<BoolExpr> children) {
  DCV_CHECK(!children.empty()) << "AND needs at least one child";
  BoolExpr e;
  e.kind_ = Kind::kAnd;
  e.children_ = std::move(children);
  return e;
}

BoolExpr BoolExpr::Or(std::vector<BoolExpr> children) {
  DCV_CHECK(!children.empty()) << "OR needs at least one child";
  BoolExpr e;
  e.kind_ = Kind::kOr;
  e.children_ = std::move(children);
  return e;
}

bool BoolExpr::Evaluate(const std::vector<int64_t>& assignment) const {
  switch (kind_) {
    case Kind::kAtom: {
      int64_t v = agg_.Evaluate(assignment);
      return op_ == CmpOp::kLe ? v <= threshold_ : v >= threshold_;
    }
    case Kind::kAnd:
      for (const BoolExpr& c : children_) {
        if (!c.Evaluate(assignment)) {
          return false;
        }
      }
      return true;
    case Kind::kOr:
      for (const BoolExpr& c : children_) {
        if (c.Evaluate(assignment)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

int BoolExpr::max_var() const {
  if (kind_ == Kind::kAtom) {
    return agg_.max_var();
  }
  int best = -1;
  for (const BoolExpr& c : children_) {
    best = std::max(best, c.max_var());
  }
  return best;
}

size_t BoolExpr::NodeCount() const {
  size_t count = 1;
  if (kind_ == Kind::kAtom) {
    count += agg_.NodeCount();
  }
  for (const BoolExpr& c : children_) {
    count += c.NodeCount();
  }
  return count;
}

std::string BoolExpr::ToString(const std::vector<std::string>* names) const {
  switch (kind_) {
    case Kind::kAtom:
      return "(" + agg_.ToString(names) + " " + std::string(CmpOpName(op_)) +
             " " + std::to_string(threshold_) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " && " : " || ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) {
          out += sep;
        }
        out += children_[i].ToString(names);
      }
      out += ")";
      return out;
    }
  }
  return "";
}

}  // namespace dcv
