#include "constraints/parser.h"

#include <utility>

#include "constraints/lexer.h"

namespace dcv {
namespace {

/// Scales an aggregate expression by an integer factor. Negative factors
/// swap MIN and MAX (min(a,b) * -c == max(-a*c, -b*c)).
AggExpr ScaleAgg(AggExpr expr, int64_t factor) {
  if (factor == 0) {
    return AggExpr::Linear(LinearExpr());
  }
  switch (expr.kind()) {
    case AggExpr::Kind::kLinear: {
      LinearExpr lin = expr.linear();
      lin.Scale(factor);
      return AggExpr::Linear(std::move(lin));
    }
    case AggExpr::Kind::kSum: {
      std::vector<AggExpr> kids;
      kids.reserve(expr.children().size());
      for (const AggExpr& c : expr.children()) {
        kids.push_back(ScaleAgg(c, factor));
      }
      return AggExpr::Sum(std::move(kids));
    }
    case AggExpr::Kind::kMin:
    case AggExpr::Kind::kMax: {
      std::vector<AggExpr> kids;
      kids.reserve(expr.children().size());
      for (const AggExpr& c : expr.children()) {
        kids.push_back(ScaleAgg(c, factor));
      }
      bool is_min = expr.kind() == AggExpr::Kind::kMin;
      if (factor < 0) {
        is_min = !is_min;
      }
      return is_min ? AggExpr::Min(std::move(kids))
                    : AggExpr::Max(std::move(kids));
    }
  }
  return expr;
}

/// Adds two aggregate expressions, merging linear leaves where possible.
AggExpr AddAgg(AggExpr a, AggExpr b) {
  if (a.kind() == AggExpr::Kind::kLinear &&
      b.kind() == AggExpr::Kind::kLinear) {
    LinearExpr lin = a.linear();
    lin.Add(b.linear());
    return AggExpr::Linear(std::move(lin));
  }
  std::vector<AggExpr> kids;
  // Flatten nested sums for compactness.
  if (a.kind() == AggExpr::Kind::kSum) {
    kids = a.children();
  } else {
    kids.push_back(std::move(a));
  }
  if (b.kind() == AggExpr::Kind::kSum) {
    for (const AggExpr& c : b.children()) {
      kids.push_back(c);
    }
  } else {
    kids.push_back(std::move(b));
  }
  return AggExpr::Sum(std::move(kids));
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::vector<std::string> var_names,
         bool allow_new_vars)
      : tokens_(std::move(tokens)),
        var_names_(std::move(var_names)),
        allow_new_vars_(allow_new_vars) {}

  Result<BoolExpr> Parse() {
    DCV_ASSIGN_OR_RETURN(BoolExpr expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Unexpected("end of input");
    }
    return expr;
  }

  std::vector<std::string> TakeVarNames() { return std::move(var_names_); }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  Token Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind) {
    if (!Match(kind)) {
      return InvalidArgumentError(
          "expected " + std::string(TokenKindName(kind)) + " but found " +
          std::string(TokenKindName(Peek().kind)) + " at offset " +
          std::to_string(Peek().offset));
    }
    return OkStatus();
  }

  Status Unexpected(const std::string& wanted) {
    return InvalidArgumentError(
        "expected " + wanted + " but found " +
        std::string(TokenKindName(Peek().kind)) + " at offset " +
        std::to_string(Peek().offset));
  }

  Result<int> ResolveVar(const std::string& name, size_t offset) {
    for (size_t i = 0; i < var_names_.size(); ++i) {
      if (var_names_[i] == name) {
        return static_cast<int>(i);
      }
    }
    if (!allow_new_vars_) {
      return InvalidArgumentError("unknown variable '" + name +
                                  "' at offset " + std::to_string(offset));
    }
    var_names_.push_back(name);
    return static_cast<int>(var_names_.size() - 1);
  }

  Result<BoolExpr> ParseOr() {
    DCV_ASSIGN_OR_RETURN(BoolExpr first, ParseAnd());
    std::vector<BoolExpr> children;
    children.push_back(std::move(first));
    while (Match(TokenKind::kOr)) {
      DCV_ASSIGN_OR_RETURN(BoolExpr next, ParseAnd());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) {
      return std::move(children.front());
    }
    return BoolExpr::Or(std::move(children));
  }

  Result<BoolExpr> ParseAnd() {
    DCV_ASSIGN_OR_RETURN(BoolExpr first, ParsePrimary());
    std::vector<BoolExpr> children;
    children.push_back(std::move(first));
    while (Match(TokenKind::kAnd)) {
      DCV_ASSIGN_OR_RETURN(BoolExpr next, ParsePrimary());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) {
      return std::move(children.front());
    }
    return BoolExpr::And(std::move(children));
  }

  Result<BoolExpr> ParsePrimary() {
    // A '(' is ambiguous: it may group a boolean expression or an arithmetic
    // one. Try the atom interpretation first and backtrack on failure.
    size_t saved_pos = pos_;
    size_t saved_vars = var_names_.size();
    Result<BoolExpr> atom = ParseAtom();
    if (atom.ok()) {
      return atom;
    }
    pos_ = saved_pos;
    var_names_.resize(saved_vars);
    if (Match(TokenKind::kLParen)) {
      DCV_ASSIGN_OR_RETURN(BoolExpr inner, ParseOr());
      DCV_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    // Neither parse worked; surface the atom error, which is usually the
    // more informative one.
    return atom;
  }

  Result<BoolExpr> ParseAtom() {
    DCV_ASSIGN_OR_RETURN(AggExpr agg, ParseAgg());
    CmpOp op;
    if (Match(TokenKind::kLe)) {
      op = CmpOp::kLe;
    } else if (Match(TokenKind::kGe)) {
      op = CmpOp::kGe;
    } else {
      return Unexpected("'<=' or '>='");
    }
    bool negative = Match(TokenKind::kMinus);
    if (Peek().kind != TokenKind::kInt) {
      return Unexpected("integer threshold");
    }
    int64_t threshold = Advance().int_value;
    if (negative) {
      threshold = -threshold;
    }
    return BoolExpr::Atom(std::move(agg), op, threshold);
  }

  Result<AggExpr> ParseAgg() {
    bool negate = Match(TokenKind::kMinus);
    DCV_ASSIGN_OR_RETURN(AggExpr acc, ParseTerm());
    if (negate) {
      acc = ScaleAgg(std::move(acc), -1);
    }
    for (;;) {
      if (Match(TokenKind::kPlus)) {
        DCV_ASSIGN_OR_RETURN(AggExpr next, ParseTerm());
        acc = AddAgg(std::move(acc), std::move(next));
      } else if (Match(TokenKind::kMinus)) {
        DCV_ASSIGN_OR_RETURN(AggExpr next, ParseTerm());
        acc = AddAgg(std::move(acc), ScaleAgg(std::move(next), -1));
      } else {
        break;
      }
    }
    return acc;
  }

  Result<AggExpr> ParseTerm() {
    if (Peek().kind == TokenKind::kInt) {
      int64_t coef = Advance().int_value;
      // Optional '*' then a factor; a bare integer is a constant.
      bool has_star = Match(TokenKind::kStar);
      TokenKind next = Peek().kind;
      bool factor_follows =
          has_star || next == TokenKind::kIdent || next == TokenKind::kMin ||
          next == TokenKind::kMax || next == TokenKind::kSum ||
          next == TokenKind::kLParen;
      if (!factor_follows) {
        return AggExpr::Linear(LinearExpr::FromConstant(coef));
      }
      DCV_ASSIGN_OR_RETURN(AggExpr factor, ParseFactor());
      return ScaleAgg(std::move(factor), coef);
    }
    return ParseFactor();
  }

  Result<AggExpr> ParseFactor() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIdent: {
        Token t = Advance();
        DCV_ASSIGN_OR_RETURN(int var, ResolveVar(t.text, t.offset));
        return AggExpr::Linear(LinearExpr::FromTerm(var, 1));
      }
      case TokenKind::kMin:
      case TokenKind::kMax:
      case TokenKind::kSum: {
        TokenKind func = Advance().kind;
        DCV_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
        std::vector<AggExpr> args;
        do {
          DCV_ASSIGN_OR_RETURN(AggExpr arg, ParseAgg());
          args.push_back(std::move(arg));
        } while (Match(TokenKind::kComma));
        DCV_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
        if (func == TokenKind::kMin) {
          return AggExpr::Min(std::move(args));
        }
        if (func == TokenKind::kMax) {
          return AggExpr::Max(std::move(args));
        }
        return AggExpr::Sum(std::move(args));
      }
      case TokenKind::kLParen: {
        Advance();
        DCV_ASSIGN_OR_RETURN(AggExpr inner, ParseAgg());
        DCV_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      default:
        return Unexpected("variable, aggregate, or '('");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<std::string> var_names_;
  bool allow_new_vars_;
};

}  // namespace

Result<ParsedConstraint> ParseConstraint(const std::string& text) {
  DCV_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens), {}, /*allow_new_vars=*/true);
  DCV_ASSIGN_OR_RETURN(BoolExpr expr, parser.Parse());
  ParsedConstraint out{std::move(expr), parser.TakeVarNames()};
  return out;
}

Result<BoolExpr> ParseConstraintWithVars(
    const std::string& text, const std::vector<std::string>& var_names) {
  DCV_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens), var_names, /*allow_new_vars=*/false);
  return parser.Parse();
}

}  // namespace dcv
