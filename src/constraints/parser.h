#ifndef DCV_CONSTRAINTS_PARSER_H_
#define DCV_CONSTRAINTS_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/ast.h"

namespace dcv {

/// A parsed global constraint plus the variable-name table. Variables are
/// assigned indices in order of first appearance in the source text;
/// `var_names[i]` is the name of variable i.
struct ParsedConstraint {
  BoolExpr expr;
  std::vector<std::string> var_names;

  /// Number of distinct variables.
  int num_vars() const { return static_cast<int>(var_names.size()); }
};

/// Parses the constraint language of the paper (§3.1):
///
///   constraint := or_expr
///   or_expr    := and_expr (('||' | OR) and_expr)*
///   and_expr   := primary (('&&' | AND) primary)*
///   primary    := atom | '(' or_expr ')'
///   atom       := agg ('<=' | '>=') ['-'] INT
///   agg        := ['-'] term (('+' | '-') term)*
///   term       := INT ['*'] factor | INT | factor
///   factor     := IDENT | (MIN|MAX|SUM) '{' agg (',' agg)* '}' | '(' agg ')'
///
/// AND binds tighter than OR. Keywords are case-insensitive. Example:
///   ((3*x1 + x2 >= 1) || (MIN{x1, 2*x3 - x2} <= 5)) && (x1 + MAX{3*x2, x3} >= 4)
Result<ParsedConstraint> ParseConstraint(const std::string& text);

/// Like ParseConstraint but resolves identifiers against a fixed name table;
/// unknown identifiers are an error. Useful when the variable order is
/// dictated by an existing deployment (site ids).
Result<BoolExpr> ParseConstraintWithVars(
    const std::string& text, const std::vector<std::string>& var_names);

}  // namespace dcv

#endif  // DCV_CONSTRAINTS_PARSER_H_
