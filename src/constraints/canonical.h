#ifndef DCV_CONSTRAINTS_CANONICAL_H_
#define DCV_CONSTRAINTS_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/normalize.h"

namespace dcv {

/// A linear atom rewritten into the solver's canonical form
///
///     sum_i coef_i * Y_i <= bound,   coef_i > 0,
///
/// where Y_i is either X_{var_i} itself (`mirrored == false`) or its
/// reflection M_{var_i} - X_{var_i} (`mirrored == true`). The reflection
/// eliminates `>=` comparisons and negative coefficients (paper §3.1 assumes
/// them away; this is the general reduction): an upper bound T on a mirrored
/// variable is a lower bound M - T on the original.
struct CanonicalIneq {
  struct Term {
    int var;        ///< Original variable index.
    int64_t coef;   ///< Positive coefficient.
    bool mirrored;  ///< True when the term is over M_var - X_var.

    friend bool operator==(const Term&, const Term&) = default;
  };

  std::vector<Term> terms;
  int64_t bound = 0;

  /// True when the inequality holds for every assignment (no terms and
  /// bound >= 0): it induces no local constraints.
  bool IsTriviallyTrue() const { return terms.empty() && bound >= 0; }

  /// True when no assignment satisfies it (no terms and bound < 0, or the
  /// minimum achievable left-hand side, 0, exceeds bound).
  bool IsTriviallyFalse() const { return bound < 0; }

  /// Evaluates the canonical inequality on an assignment of the *original*
  /// variables (mirrored terms are expanded using domain_max).
  bool Evaluate(const std::vector<int64_t>& assignment,
                const std::vector<int64_t>& domain_max) const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;
};

/// Rewrites `atom` into canonical form over variables with the given domain
/// maxima (`domain_max[var]` is M_var). Fails when the atom references a
/// variable without a domain bound.
Result<CanonicalIneq> Canonicalize(const LinearAtom& atom,
                                   const std::vector<int64_t>& domain_max);

}  // namespace dcv

#endif  // DCV_CONSTRAINTS_CANONICAL_H_
