#ifndef DCV_CONSTRAINTS_LEXER_H_
#define DCV_CONSTRAINTS_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dcv {

/// Token kinds of the constraint language.
enum class TokenKind {
  kInt,        ///< Non-negative integer literal.
  kIdent,      ///< Variable name: [A-Za-z_][A-Za-z0-9_]*.
  kMin,        ///< Keyword MIN.
  kMax,        ///< Keyword MAX.
  kSum,        ///< Keyword SUM.
  kAnd,        ///< "&&" or keyword AND.
  kOr,         ///< "||" or keyword OR.
  kLe,         ///< "<=".
  kGe,         ///< ">=".
  kPlus,       ///< "+".
  kMinus,      ///< "-".
  kStar,       ///< "*".
  kLParen,     ///< "(".
  kRParen,     ///< ")".
  kLBrace,     ///< "{".
  kRBrace,     ///< "}".
  kComma,      ///< ",".
  kEnd,        ///< End of input.
};

std::string_view TokenKindName(TokenKind kind);

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind;
  std::string text;    ///< Literal text (identifiers and integers).
  int64_t int_value;   ///< Parsed value for kInt.
  size_t offset;       ///< Byte offset in the source string.
};

/// Tokenizes a constraint string. Keywords MIN/MAX/SUM/AND/OR are
/// case-insensitive; anything else alphabetic is an identifier.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace dcv

#endif  // DCV_CONSTRAINTS_LEXER_H_
