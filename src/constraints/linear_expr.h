#ifndef DCV_CONSTRAINTS_LINEAR_EXPR_H_
#define DCV_CONSTRAINTS_LINEAR_EXPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dcv {

/// A linear expression  sum_i A_i * X_i + offset  over integer site
/// variables, stored as sorted (variable index, coefficient) terms with
/// nonzero coefficients. This is the leaf type of aggregate expressions and
/// the payload of canonical inequalities.
class LinearExpr {
 public:
  struct Term {
    int var;          ///< Variable index (site id).
    int64_t coef;     ///< Nonzero coefficient A_i.

    friend bool operator==(const Term&, const Term&) = default;
  };

  LinearExpr() = default;

  /// A_i * X_i.
  static LinearExpr FromTerm(int var, int64_t coef);

  /// A constant expression.
  static LinearExpr FromConstant(int64_t offset);

  /// Adds `coef * X_var` to this expression, canceling to zero if needed.
  void AddTerm(int var, int64_t coef);

  /// Adds a constant.
  void AddConstant(int64_t delta) { offset_ += delta; }

  /// this += other.
  void Add(const LinearExpr& other);

  /// this *= factor (applied to every coefficient and the offset).
  void Scale(int64_t factor);

  /// Evaluates with assignment[var] substituted for X_var. Variables beyond
  /// assignment.size() evaluate as 0.
  int64_t Evaluate(const std::vector<int64_t>& assignment) const;

  const std::vector<Term>& terms() const { return terms_; }
  int64_t offset() const { return offset_; }
  bool is_constant() const { return terms_.empty(); }

  /// Coefficient of X_var (0 when absent).
  int64_t CoefficientOf(int var) const;

  /// Largest variable index referenced, or -1 for a constant expression.
  int max_var() const { return terms_.empty() ? -1 : terms_.back().var; }

  /// Human-readable form, e.g. "3*x1 + x2 - 5"; variable names come from
  /// `names` when provided (by index), else "x<i>".
  std::string ToString(const std::vector<std::string>* names = nullptr) const;

  friend bool operator==(const LinearExpr&, const LinearExpr&) = default;

 private:
  std::vector<Term> terms_;  // Sorted by var, coefficients nonzero.
  int64_t offset_ = 0;
};

}  // namespace dcv

#endif  // DCV_CONSTRAINTS_LINEAR_EXPR_H_
