#include "constraints/normalize.h"

#include <algorithm>

namespace dcv {
namespace {

// Adds two MIN/MAX-normalized trees (linear leaves), distributing the sum
// over MIN/MAX children. Grows *node_budget downward; returns error when
// exhausted.
Result<AggExpr> AddNormalized(const AggExpr& a, const AggExpr& b,
                              int64_t* node_budget) {
  if (*node_budget <= 0) {
    return ResourceExhaustedError(
        "SUM/MIN/MAX normalization exceeded the node budget");
  }
  if (a.kind() == AggExpr::Kind::kLinear &&
      b.kind() == AggExpr::Kind::kLinear) {
    --*node_budget;
    LinearExpr lin = a.linear();
    lin.Add(b.linear());
    return AggExpr::Linear(std::move(lin));
  }
  // Distribute over the left tree first, then the right.
  if (a.kind() == AggExpr::Kind::kMin || a.kind() == AggExpr::Kind::kMax) {
    std::vector<AggExpr> kids;
    kids.reserve(a.children().size());
    for (const AggExpr& c : a.children()) {
      DCV_ASSIGN_OR_RETURN(AggExpr sum, AddNormalized(c, b, node_budget));
      kids.push_back(std::move(sum));
    }
    --*node_budget;
    return a.kind() == AggExpr::Kind::kMin ? AggExpr::Min(std::move(kids))
                                           : AggExpr::Max(std::move(kids));
  }
  if (b.kind() == AggExpr::Kind::kMin || b.kind() == AggExpr::Kind::kMax) {
    std::vector<AggExpr> kids;
    kids.reserve(b.children().size());
    for (const AggExpr& c : b.children()) {
      DCV_ASSIGN_OR_RETURN(AggExpr sum, AddNormalized(a, c, node_budget));
      kids.push_back(std::move(sum));
    }
    --*node_budget;
    return b.kind() == AggExpr::Kind::kMin ? AggExpr::Min(std::move(kids))
                                           : AggExpr::Max(std::move(kids));
  }
  return InternalError("unexpected SUM node in normalized tree");
}

Result<AggExpr> PushSumsInsideImpl(const AggExpr& expr,
                                   int64_t* node_budget) {
  if (*node_budget <= 0) {
    return ResourceExhaustedError(
        "SUM/MIN/MAX normalization exceeded the node budget");
  }
  switch (expr.kind()) {
    case AggExpr::Kind::kLinear:
      --*node_budget;
      return expr;
    case AggExpr::Kind::kMin:
    case AggExpr::Kind::kMax: {
      std::vector<AggExpr> kids;
      for (const AggExpr& c : expr.children()) {
        DCV_ASSIGN_OR_RETURN(AggExpr norm, PushSumsInsideImpl(c, node_budget));
        // Flatten MIN{MIN{..},..} to keep trees small.
        if (norm.kind() == expr.kind()) {
          for (const AggExpr& g : norm.children()) {
            kids.push_back(g);
          }
        } else {
          kids.push_back(std::move(norm));
        }
      }
      --*node_budget;
      return expr.kind() == AggExpr::Kind::kMin
                 ? AggExpr::Min(std::move(kids))
                 : AggExpr::Max(std::move(kids));
    }
    case AggExpr::Kind::kSum: {
      DCV_ASSIGN_OR_RETURN(
          AggExpr acc, PushSumsInsideImpl(expr.children().front(), node_budget));
      for (size_t i = 1; i < expr.children().size(); ++i) {
        DCV_ASSIGN_OR_RETURN(
            AggExpr next, PushSumsInsideImpl(expr.children()[i], node_budget));
        DCV_ASSIGN_OR_RETURN(acc, AddNormalized(acc, next, node_budget));
      }
      return acc;
    }
  }
  return InternalError("unknown aggregate kind");
}

// Turns a MIN/MAX-normalized atom into a boolean tree over linear atoms.
Result<BoolExpr> AtomTreeToBool(const AggExpr& tree, CmpOp op,
                                int64_t threshold, int64_t* node_budget) {
  if (*node_budget <= 0) {
    return ResourceExhaustedError(
        "MIN/MAX elimination exceeded the node budget");
  }
  --*node_budget;
  if (tree.kind() == AggExpr::Kind::kLinear) {
    return BoolExpr::Atom(tree, op, threshold);
  }
  std::vector<BoolExpr> kids;
  kids.reserve(tree.children().size());
  for (const AggExpr& c : tree.children()) {
    DCV_ASSIGN_OR_RETURN(BoolExpr b,
                         AtomTreeToBool(c, op, threshold, node_budget));
    kids.push_back(std::move(b));
  }
  // MIN <= T is a disjunction, MAX <= T a conjunction; duals for >=.
  bool disjunctive = (tree.kind() == AggExpr::Kind::kMin) == (op == CmpOp::kLe);
  return disjunctive ? BoolExpr::Or(std::move(kids))
                     : BoolExpr::And(std::move(kids));
}

Result<BoolExpr> EliminateMinMaxImpl(const BoolExpr& expr,
                                     int64_t* node_budget) {
  if (*node_budget <= 0) {
    return ResourceExhaustedError(
        "MIN/MAX elimination exceeded the node budget");
  }
  switch (expr.kind()) {
    case BoolExpr::Kind::kAtom: {
      DCV_ASSIGN_OR_RETURN(AggExpr normalized,
                           PushSumsInsideImpl(expr.agg(), node_budget));
      return AtomTreeToBool(normalized, expr.op(), expr.threshold(),
                            node_budget);
    }
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr: {
      std::vector<BoolExpr> kids;
      kids.reserve(expr.children().size());
      for (const BoolExpr& c : expr.children()) {
        DCV_ASSIGN_OR_RETURN(BoolExpr b, EliminateMinMaxImpl(c, node_budget));
        kids.push_back(std::move(b));
      }
      --*node_budget;
      return expr.kind() == BoolExpr::Kind::kAnd
                 ? BoolExpr::And(std::move(kids))
                 : BoolExpr::Or(std::move(kids));
    }
  }
  return InternalError("unknown boolean kind");
}

// CNF of a linear-atom boolean tree by distribution.
Result<std::vector<Clause>> ToClauses(const BoolExpr& expr,
                                      const NormalizeOptions& options) {
  switch (expr.kind()) {
    case BoolExpr::Kind::kAtom: {
      Clause c;
      c.atoms.push_back(
          LinearAtom{expr.agg().linear(), expr.op(), expr.threshold()});
      return std::vector<Clause>{std::move(c)};
    }
    case BoolExpr::Kind::kAnd: {
      std::vector<Clause> out;
      for (const BoolExpr& child : expr.children()) {
        DCV_ASSIGN_OR_RETURN(auto sub, ToClauses(child, options));
        for (auto& c : sub) {
          out.push_back(std::move(c));
        }
        if (out.size() > options.max_clauses) {
          return ResourceExhaustedError("CNF clause limit exceeded");
        }
      }
      return out;
    }
    case BoolExpr::Kind::kOr: {
      // Cross product of the children's clause sets.
      std::vector<Clause> acc{Clause{}};
      for (const BoolExpr& child : expr.children()) {
        DCV_ASSIGN_OR_RETURN(auto sub, ToClauses(child, options));
        std::vector<Clause> next;
        next.reserve(acc.size() * sub.size());
        if (acc.size() * sub.size() > options.max_clauses) {
          return ResourceExhaustedError("CNF clause limit exceeded");
        }
        for (const Clause& a : acc) {
          for (const Clause& b : sub) {
            Clause merged = a;
            merged.atoms.insert(merged.atoms.end(), b.atoms.begin(),
                                b.atoms.end());
            if (merged.atoms.size() > options.max_atoms_per_clause) {
              return ResourceExhaustedError("CNF clause width limit exceeded");
            }
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  return InternalError("unknown boolean kind");
}

}  // namespace

std::string LinearAtom::ToString(
    const std::vector<std::string>* names) const {
  return expr.ToString(names) + " " + std::string(CmpOpName(op)) + " " +
         std::to_string(threshold);
}

int CnfConstraint::max_var() const {
  int best = -1;
  for (const Clause& c : clauses) {
    for (const LinearAtom& a : c.atoms) {
      best = std::max(best, a.expr.max_var());
    }
  }
  return best;
}

std::string CnfConstraint::ToString(
    const std::vector<std::string>* names) const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) {
      out += " && ";
    }
    out += "(";
    for (size_t j = 0; j < clauses[i].atoms.size(); ++j) {
      if (j > 0) {
        out += " || ";
      }
      out += clauses[i].atoms[j].ToString(names);
    }
    out += ")";
  }
  return out;
}

Result<AggExpr> PushSumsInside(const AggExpr& expr,
                               const NormalizeOptions& options) {
  int64_t budget = static_cast<int64_t>(options.max_nodes);
  return PushSumsInsideImpl(expr, &budget);
}

Result<BoolExpr> EliminateMinMax(const BoolExpr& expr,
                                 const NormalizeOptions& options) {
  int64_t budget = static_cast<int64_t>(options.max_nodes);
  return EliminateMinMaxImpl(expr, &budget);
}

Result<CnfConstraint> ToCnf(const BoolExpr& expr,
                            const NormalizeOptions& options) {
  DCV_ASSIGN_OR_RETURN(BoolExpr linearized, EliminateMinMax(expr, options));
  DCV_ASSIGN_OR_RETURN(auto clauses, ToClauses(linearized, options));
  CnfConstraint out;
  out.clauses = std::move(clauses);
  return out;
}

}  // namespace dcv
