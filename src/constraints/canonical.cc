#include "constraints/canonical.h"

namespace dcv {

bool CanonicalIneq::Evaluate(const std::vector<int64_t>& assignment,
                             const std::vector<int64_t>& domain_max) const {
  int64_t lhs = 0;
  for (const Term& t : terms) {
    int64_t x = (t.var >= 0 && static_cast<size_t>(t.var) < assignment.size())
                    ? assignment[static_cast<size_t>(t.var)]
                    : 0;
    int64_t y = t.mirrored ? domain_max[static_cast<size_t>(t.var)] - x : x;
    lhs += t.coef * y;
  }
  return lhs <= bound;
}

std::string CanonicalIneq::ToString(
    const std::vector<std::string>* names) const {
  auto var_name = [&](int var) -> std::string {
    if (names != nullptr && var >= 0 &&
        static_cast<size_t>(var) < names->size()) {
      return (*names)[static_cast<size_t>(var)];
    }
    return "x" + std::to_string(var);
  };
  std::string out;
  for (const Term& t : terms) {
    if (!out.empty()) {
      out += " + ";
    }
    if (t.coef != 1) {
      out += std::to_string(t.coef) + "*";
    }
    if (t.mirrored) {
      out += "(M - " + var_name(t.var) + ")";
    } else {
      out += var_name(t.var);
    }
  }
  if (out.empty()) {
    out = "0";
  }
  out += " <= " + std::to_string(bound);
  return out;
}

Result<CanonicalIneq> Canonicalize(const LinearAtom& atom,
                                   const std::vector<int64_t>& domain_max) {
  // Bring to  sum coef*X <= bound  form: for >=, negate both sides.
  int64_t sign = atom.op == CmpOp::kLe ? 1 : -1;
  int64_t bound = sign * atom.threshold - sign * atom.expr.offset();

  CanonicalIneq out;
  for (const LinearExpr::Term& t : atom.expr.terms()) {
    int64_t coef = sign * t.coef;
    if (coef == 0) {
      continue;
    }
    if (t.var < 0 || static_cast<size_t>(t.var) >= domain_max.size()) {
      return InvalidArgumentError(
          "atom references variable x" + std::to_string(t.var) +
          " with no declared domain");
    }
    int64_t m = domain_max[static_cast<size_t>(t.var)];
    if (m < 0) {
      return InvalidArgumentError("negative domain_max for variable x" +
                                  std::to_string(t.var));
    }
    if (coef > 0) {
      out.terms.push_back(CanonicalIneq::Term{t.var, coef, false});
    } else {
      // coef*X == |coef|*(M - X) - |coef|*M; move the constant to the bound.
      out.terms.push_back(CanonicalIneq::Term{t.var, -coef, true});
      bound += (-coef) * m;
    }
  }
  out.bound = bound;
  return out;
}

}  // namespace dcv
