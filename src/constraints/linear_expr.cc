#include "constraints/linear_expr.h"

#include <algorithm>

namespace dcv {

LinearExpr LinearExpr::FromTerm(int var, int64_t coef) {
  LinearExpr e;
  e.AddTerm(var, coef);
  return e;
}

LinearExpr LinearExpr::FromConstant(int64_t offset) {
  LinearExpr e;
  e.offset_ = offset;
  return e;
}

void LinearExpr::AddTerm(int var, int64_t coef) {
  if (coef == 0) {
    return;
  }
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), var,
      [](const Term& t, int v) { return t.var < v; });
  if (it != terms_.end() && it->var == var) {
    it->coef += coef;
    if (it->coef == 0) {
      terms_.erase(it);
    }
  } else {
    terms_.insert(it, Term{var, coef});
  }
}

void LinearExpr::Add(const LinearExpr& other) {
  for (const Term& t : other.terms_) {
    AddTerm(t.var, t.coef);
  }
  offset_ += other.offset_;
}

void LinearExpr::Scale(int64_t factor) {
  if (factor == 0) {
    terms_.clear();
    offset_ = 0;
    return;
  }
  for (Term& t : terms_) {
    t.coef *= factor;
  }
  offset_ *= factor;
}

int64_t LinearExpr::Evaluate(const std::vector<int64_t>& assignment) const {
  int64_t value = offset_;
  for (const Term& t : terms_) {
    if (t.var >= 0 && static_cast<size_t>(t.var) < assignment.size()) {
      value += t.coef * assignment[static_cast<size_t>(t.var)];
    }
  }
  return value;
}

int64_t LinearExpr::CoefficientOf(int var) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), var,
      [](const Term& t, int v) { return t.var < v; });
  if (it != terms_.end() && it->var == var) {
    return it->coef;
  }
  return 0;
}

std::string LinearExpr::ToString(
    const std::vector<std::string>* names) const {
  std::string out;
  auto var_name = [&](int var) -> std::string {
    if (names != nullptr && var >= 0 &&
        static_cast<size_t>(var) < names->size()) {
      return (*names)[static_cast<size_t>(var)];
    }
    return "x" + std::to_string(var);
  };
  for (const Term& t : terms_) {
    int64_t coef = t.coef;
    if (out.empty()) {
      if (coef < 0) {
        out += "-";
        coef = -coef;
      }
    } else {
      out += (coef < 0) ? " - " : " + ";
      coef = std::abs(coef);
    }
    if (coef != 1) {
      out += std::to_string(coef) + "*";
    }
    out += var_name(t.var);
  }
  if (offset_ != 0 || terms_.empty()) {
    if (out.empty()) {
      out += std::to_string(offset_);
    } else {
      out += (offset_ < 0) ? " - " : " + ";
      out += std::to_string(std::abs(offset_));
    }
  }
  return out;
}

}  // namespace dcv
