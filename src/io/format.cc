#include "io/format.h"

#include "io/compress.h"

namespace dcv::io {

std::string_view RowCodecName(RowCodec codec) {
  switch (codec) {
    case RowCodec::kFlat:
      return "flat";
    case RowCodec::kDelta:
      return "delta";
    case RowCodec::kZoh:
      return "zoh";
  }
  return "?";
}

std::string_view BlockCompressionName(BlockCompression compression) {
  switch (compression) {
    case BlockCompression::kNone:
      return "none";
    case BlockCompression::kLz4:
      return "lz4";
  }
  return "?";
}

Result<RowCodec> ParseRowCodec(const std::string& name) {
  if (name == "flat") {
    return RowCodec::kFlat;
  }
  if (name == "delta") {
    return RowCodec::kDelta;
  }
  if (name == "zoh") {
    return RowCodec::kZoh;
  }
  return InvalidArgumentError("unknown row codec '" + name +
                              "' (expected flat, delta, or zoh)");
}

Result<BlockCompression> ParseBlockCompression(const std::string& name) {
  if (name == "none") {
    return BlockCompression::kNone;
  }
  if (name == "lz4") {
    if (!Lz4Available()) {
      return UnimplementedError(
          "this build has no LZ4 support (rebuild with liblz4, or use "
          "--compress none/auto)");
    }
    return BlockCompression::kLz4;
  }
  if (name == "auto") {
    return Lz4Available() ? BlockCompression::kLz4 : BlockCompression::kNone;
  }
  return InvalidArgumentError("unknown compression '" + name +
                              "' (expected none, lz4, or auto)");
}

}  // namespace dcv::io
