#include "io/compress.h"

#include <limits>

#if DCV_HAVE_LZ4
#include <lz4.h>
#endif

namespace dcv::io {

#if DCV_HAVE_LZ4

bool Lz4Available() { return true; }

Status Lz4Compress(const std::string& raw, std::string* out) {
  if (raw.size() >
      static_cast<size_t>(std::numeric_limits<int>::max()) ||
      raw.size() > static_cast<size_t>(LZ4_MAX_INPUT_SIZE)) {
    return InvalidArgumentError("LZ4 input too large");
  }
  const int bound = LZ4_compressBound(static_cast<int>(raw.size()));
  out->resize(static_cast<size_t>(bound));
  const int written =
      LZ4_compress_default(raw.data(), out->data(),
                           static_cast<int>(raw.size()), bound);
  if (written <= 0) {
    return InternalError("LZ4 compression failed");
  }
  out->resize(static_cast<size_t>(written));
  return OkStatus();
}

Status Lz4Decompress(const uint8_t* data, size_t len, size_t raw_len,
                     std::string* out) {
  if (len > static_cast<size_t>(std::numeric_limits<int>::max()) ||
      raw_len > static_cast<size_t>(std::numeric_limits<int>::max())) {
    return InvalidArgumentError("LZ4 block too large");
  }
  out->resize(raw_len);
  const int produced = LZ4_decompress_safe(
      reinterpret_cast<const char*>(data), out->data(),
      static_cast<int>(len), static_cast<int>(raw_len));
  if (produced < 0 || static_cast<size_t>(produced) != raw_len) {
    return InvalidArgumentError("corrupt LZ4 block");
  }
  return OkStatus();
}

#else  // !DCV_HAVE_LZ4

bool Lz4Available() { return false; }

Status Lz4Compress(const std::string& raw, std::string* out) {
  (void)raw;
  (void)out;
  return UnimplementedError(
      "this build has no LZ4 support (liblz4 was not found at configure "
      "time)");
}

Status Lz4Decompress(const uint8_t* data, size_t len, size_t raw_len,
                     std::string* out) {
  (void)data;
  (void)len;
  (void)raw_len;
  (void)out;
  return UnimplementedError(
      "this file needs LZ4 decompression but the build has no LZ4 support "
      "(liblz4 was not found at configure time)");
}

#endif  // DCV_HAVE_LZ4

}  // namespace dcv::io
