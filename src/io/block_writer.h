#ifndef DCV_IO_BLOCK_WRITER_H_
#define DCV_IO_BLOCK_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "io/format.h"

namespace dcv::io {

/// Streaming writer of the dcvb container (see format.h). Rows are
/// buffered into structure-of-arrays column buffers; every
/// `options.block_rows` rows the block is encoded (codec + optional LZ4)
/// on the *caller's* thread and handed to a background writer thread over
/// a bounded queue (`options.queue_blocks` deep, 2 = double buffering), so
/// encoding and disk I/O overlap and a slow disk back-pressures the caller
/// instead of growing memory without bound. `options.async = false` keeps
/// everything on the caller thread (deterministic single-thread path, used
/// by tests and tools that don't care about overlap).
///
/// Usage:
///   DCV_ASSIGN_OR_RETURN(auto writer,
///                        BlockWriter::Open(path, names, options));
///   for (...) DCV_RETURN_IF_ERROR(writer->AppendRow(values));
///   DCV_RETURN_IF_ERROR(writer->Finish());
///
/// Finish() flushes the partial block, writes the end sentinel and the
/// block-index footer, and joins the writer thread; a writer destroyed
/// without Finish() cleans up its thread but leaves the file truncated
/// (readers will report it as such — a half-written file is never valid).
class BlockWriter {
 public:
  static Result<std::unique_ptr<BlockWriter>> Open(
      const std::string& path, std::vector<std::string> column_names,
      const WriterOptions& options);

  ~BlockWriter();

  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;

  /// Appends one row; `values.size()` must equal the column count. Any
  /// queued background write error surfaces here (and in Finish).
  Status AppendRow(const std::vector<int64_t>& values);

  /// Column-batch append: `columns[c]` holds `rows` values of column c.
  /// Equivalent to `rows` AppendRow calls but skips per-row dispatch — the
  /// fast path for converters that already hold columnar data.
  Status AppendColumns(const std::vector<std::vector<int64_t>>& columns,
                       int64_t rows);

  /// Flushes, writes sentinel + footer, closes the file. Must be called
  /// exactly once; returns the first error encountered anywhere in the
  /// write pipeline.
  Status Finish();

  int64_t rows_written() const { return total_rows_; }
  int64_t blocks_written() const { return blocks_; }

  /// Bytes of the file as enqueued so far (header + blocks); final file
  /// adds the sentinel + footer at Finish.
  int64_t bytes_enqueued() const { return next_offset_; }

 private:
  BlockWriter(std::FILE* file, std::vector<std::string> column_names,
              const WriterOptions& options);

  /// Encodes + enqueues the buffered rows as one block; no-op when empty.
  Status FlushBlock();

  /// Hands `bytes` to the writer thread (or writes synchronously).
  Status EnqueueWrite(std::string bytes);

  /// Background thread main: pop, fwrite, record errors.
  void WriterLoop();

  std::FILE* file_;
  std::vector<std::string> column_names_;
  WriterOptions options_;

  std::vector<std::vector<int64_t>> pending_;  ///< SoA buffer being filled.
  int64_t pending_rows_ = 0;
  int64_t total_rows_ = 0;
  int64_t blocks_ = 0;
  int64_t next_offset_ = 0;  ///< File offset after everything enqueued.
  bool finished_ = false;

  /// Footer index: (offset, first_row, rows) per block.
  struct IndexEntry {
    uint64_t offset;
    uint64_t first_row;
    uint32_t rows;
  };
  std::vector<IndexEntry> index_;

  // Async machinery (untouched when options_.async is false).
  std::thread writer_thread_;
  std::mutex mu_;
  std::condition_variable queue_cv_;   ///< Signals the writer thread.
  std::condition_variable space_cv_;   ///< Signals the producer.
  std::deque<std::string> queue_;
  bool stop_ = false;
  Status writer_status_;  ///< First fwrite failure, sticky.
};

}  // namespace dcv::io

#endif  // DCV_IO_BLOCK_WRITER_H_
