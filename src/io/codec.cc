#include "io/codec.h"

#include "common/bytes.h"
#include "common/logging.h"

namespace dcv::io {
namespace {

// Differences are taken in uint64 so INT64_MIN..INT64_MAX swings wrap
// instead of hitting signed overflow; decode adds them back in uint64 and
// the two's-complement wrap cancels exactly.
inline uint64_t WrappingDiff(int64_t a, int64_t b) {
  return static_cast<uint64_t>(a) - static_cast<uint64_t>(b);
}

inline int64_t WrappingAdd(int64_t base, uint64_t diff) {
  return static_cast<int64_t>(static_cast<uint64_t>(base) + diff);
}

void EncodeFlatColumn(const std::vector<int64_t>& col, std::string* out) {
  for (int64_t v : col) {
    AppendLe64(static_cast<uint64_t>(v), out);
  }
}

void EncodeDeltaColumn(const std::vector<int64_t>& col, std::string* out) {
  int64_t prev = 0;
  for (int64_t v : col) {
    AppendVarint64(ZigZagEncode(static_cast<int64_t>(WrappingDiff(v, prev))),
                   out);
    prev = v;
  }
}

void EncodeZohColumn(const std::vector<int64_t>& col, std::string* out) {
  size_t i = 0;
  while (i < col.size()) {
    size_t run = 1;
    while (i + run < col.size() && col[i + run] == col[i]) {
      ++run;
    }
    AppendVarint64(run, out);
    AppendVarint64(ZigZagEncode(col[i]), out);
    i += run;
  }
}

Status DecodeFlatColumn(const uint8_t** p, const uint8_t* end, int64_t rows,
                        std::vector<int64_t>* col) {
  const size_t need = static_cast<size_t>(rows) * 8;
  if (static_cast<size_t>(end - *p) < need) {
    return InvalidArgumentError("corrupt block: flat column truncated");
  }
  col->resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    (*col)[static_cast<size_t>(r)] =
        static_cast<int64_t>(ReadLe64(*p + 8 * r));
  }
  *p += need;
  return OkStatus();
}

Status DecodeDeltaColumn(const uint8_t** p, const uint8_t* end, int64_t rows,
                         std::vector<int64_t>* col) {
  col->resize(static_cast<size_t>(rows));
  int64_t prev = 0;
  for (int64_t r = 0; r < rows; ++r) {
    uint64_t zz = 0;
    const uint8_t* next = DecodeVarint64(*p, end, &zz);
    if (next == nullptr) {
      return InvalidArgumentError("corrupt block: delta varint truncated");
    }
    *p = next;
    prev = WrappingAdd(prev, static_cast<uint64_t>(ZigZagDecode(zz)));
    (*col)[static_cast<size_t>(r)] = prev;
  }
  return OkStatus();
}

Status DecodeZohColumn(const uint8_t** p, const uint8_t* end, int64_t rows,
                       std::vector<int64_t>* col) {
  col->clear();
  col->reserve(static_cast<size_t>(rows));
  while (static_cast<int64_t>(col->size()) < rows) {
    uint64_t run = 0;
    uint64_t zz = 0;
    const uint8_t* next = DecodeVarint64(*p, end, &run);
    if (next == nullptr) {
      return InvalidArgumentError("corrupt block: zoh run length truncated");
    }
    next = DecodeVarint64(next, end, &zz);
    if (next == nullptr) {
      return InvalidArgumentError("corrupt block: zoh value truncated");
    }
    *p = next;
    const int64_t remaining = rows - static_cast<int64_t>(col->size());
    if (run == 0 || run > static_cast<uint64_t>(remaining)) {
      return InvalidArgumentError(
          "corrupt block: zoh run overshoots the block's row count");
    }
    col->insert(col->end(), static_cast<size_t>(run), ZigZagDecode(zz));
  }
  return OkStatus();
}

}  // namespace

void EncodeColumns(RowCodec codec,
                   const std::vector<std::vector<int64_t>>& columns,
                   int64_t rows, std::string* out) {
  for (const auto& col : columns) {
    DCV_CHECK(static_cast<int64_t>(col.size()) == rows)
        << "ragged column block";
    switch (codec) {
      case RowCodec::kFlat:
        EncodeFlatColumn(col, out);
        break;
      case RowCodec::kDelta:
        EncodeDeltaColumn(col, out);
        break;
      case RowCodec::kZoh:
        EncodeZohColumn(col, out);
        break;
    }
  }
}

Status DecodeColumns(RowCodec codec, const uint8_t* data, size_t len,
                     int64_t num_columns, int64_t rows,
                     std::vector<std::vector<int64_t>>* columns) {
  columns->resize(static_cast<size_t>(num_columns));
  const uint8_t* p = data;
  const uint8_t* end = data + len;
  for (int64_t c = 0; c < num_columns; ++c) {
    auto* col = &(*columns)[static_cast<size_t>(c)];
    Status status;
    switch (codec) {
      case RowCodec::kFlat:
        status = DecodeFlatColumn(&p, end, rows, col);
        break;
      case RowCodec::kDelta:
        status = DecodeDeltaColumn(&p, end, rows, col);
        break;
      case RowCodec::kZoh:
        status = DecodeZohColumn(&p, end, rows, col);
        break;
    }
    DCV_RETURN_IF_ERROR(status);
  }
  if (p != end) {
    return InvalidArgumentError(
        "corrupt block: " + std::to_string(end - p) +
        " trailing bytes after the last column");
  }
  return OkStatus();
}

}  // namespace dcv::io
