#ifndef DCV_IO_FORMAT_H_
#define DCV_IO_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dcv::io {

// The dcv binary columnar trace format ("dcvb"): a versioned container for
// long multi-column int64 time series (per-site SNMP-style measurement
// streams), built for disk-speed replay of multi-GB traces that CSV cannot
// reach. Layout:
//
//   FileHeader
//     u32  magic "DCVB"
//     u8   format version (kFormatVersion)
//     u8   row codec (RowCodec)
//     u8   block compression (BlockCompression)
//     u8   reserved, must be 0
//     u32  num_columns (>= 1)
//     u32  schema_len — byte length of the name section that follows
//     per column: u16 name_len, name bytes (UTF-8, no NUL)
//     u32  header CRC-32 of every header byte above
//
//   Data blocks, repeated 0+ times
//     u32  payload_len — on-disk payload bytes; 0 is the end sentinel
//     u32  rows in this block (>= 1)
//     u32  raw_len — payload bytes after decompression
//     u32  payload CRC-32 (of the on-disk, possibly compressed, bytes)
//     payload — RowCodec-encoded structure-of-arrays column buffers,
//               optionally LZ4 block-compressed
//
//   End sentinel: a u32 payload_len of 0.
//
//   Footer (immediately after the sentinel)
//     u32  num_blocks
//     per block: u64 file offset of its payload_len prefix,
//                u64 first row index, u32 rows
//     u64  total_rows
//     u32  footer CRC-32 of the footer bytes above
//     u64  footer_offset — file offset where the footer (num_blocks) starts
//     u32  end magic "DCVE"
//
// The payload of a block is the concatenation of one encoded buffer per
// column (column order = schema order):
//   flat:  rows fixed 8-byte little-endian values — no modeling, the
//          baseline and the fastest to decode.
//   delta: zigzag-varint of the first value, then zigzag-varints of
//          successive differences. Strongly autocorrelated series (AR(1)
//          site values) produce near-zero deltas that fit 1-2 bytes.
//   zoh:   zero-order hold runs: (varint run_length >= 1, zigzag-varint
//          value) pairs covering exactly `rows` rows. Best when values
//          plateau (sparse event counters, slow drifts sampled fast).
//
// Every multi-byte integer is little-endian. All corruption is detected,
// never crashed on: CRC mismatches, truncation (EOF inside any structure),
// and over-length prefixes each produce a distinct Status error.

inline constexpr uint32_t kFileMagic = 0x42564344;  // "DCVB" little-endian.
inline constexpr uint32_t kEndMagic = 0x45564344;   // "DCVE".
inline constexpr uint8_t kFormatVersion = 1;

/// Caps a block's on-disk and decompressed size. Purely a bound on the
/// damage a corrupt or hostile length prefix can do — a legitimate writer
/// stays far below it (default blocks are ~4096 rows).
inline constexpr uint32_t kMaxBlockPayload = 64u << 20;

/// Caps rows per block (validated on read so rows * num_columns cannot
/// overflow allocation math).
inline constexpr uint32_t kMaxBlockRows = 1u << 20;

/// Caps the schema section (column count and name bytes).
inline constexpr uint32_t kMaxColumns = 1u << 20;
inline constexpr uint32_t kMaxSchemaLen = 64u << 20;

enum class RowCodec : uint8_t {
  kFlat = 0,
  kDelta = 1,
  kZoh = 2,
};

enum class BlockCompression : uint8_t {
  kNone = 0,
  kLz4 = 1,
};

std::string_view RowCodecName(RowCodec codec);
std::string_view BlockCompressionName(BlockCompression compression);

/// Parse the CLI spellings ("flat" | "delta" | "zoh"); error names the
/// accepted set.
Result<RowCodec> ParseRowCodec(const std::string& name);

/// Parse "none" | "lz4" | "auto" ("auto" = lz4 when compiled in, none
/// otherwise — the safe default for tools that must work either way).
Result<BlockCompression> ParseBlockCompression(const std::string& name);

/// Writer-side knobs. The defaults favor the common case: delta rows, no
/// compression (portable across builds), 4096-row blocks, encode-ahead of
/// one block while the previous one is on its way to disk.
struct WriterOptions {
  RowCodec codec = RowCodec::kDelta;
  BlockCompression compression = BlockCompression::kNone;
  int64_t block_rows = 4096;

  /// When true (default) the disk write happens on a dedicated background
  /// thread behind a bounded queue; encoding stays on the caller thread.
  bool async = true;

  /// Bounded write queue depth in blocks. 2 = classic double buffering:
  /// one block in flight to disk, one being filled.
  int queue_blocks = 2;
};

}  // namespace dcv::io

#endif  // DCV_IO_FORMAT_H_
