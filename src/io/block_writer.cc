#include "io/block_writer.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "io/codec.h"
#include "io/compress.h"

namespace dcv::io {
namespace {

std::string EncodeHeader(const std::vector<std::string>& names,
                         const WriterOptions& options) {
  std::string out;
  AppendLe32(kFileMagic, &out);
  out.push_back(static_cast<char>(kFormatVersion));
  out.push_back(static_cast<char>(options.codec));
  out.push_back(static_cast<char>(options.compression));
  out.push_back('\0');  // Reserved.
  AppendLe32(static_cast<uint32_t>(names.size()), &out);
  std::string schema;
  for (const auto& name : names) {
    AppendLe16(static_cast<uint16_t>(name.size()), &schema);
    schema += name;
  }
  AppendLe32(static_cast<uint32_t>(schema.size()), &out);
  out += schema;
  AppendLe32(Crc32(out), &out);
  return out;
}

}  // namespace

Result<std::unique_ptr<BlockWriter>> BlockWriter::Open(
    const std::string& path, std::vector<std::string> column_names,
    const WriterOptions& options) {
  if (column_names.empty() ||
      column_names.size() > static_cast<size_t>(kMaxColumns)) {
    return InvalidArgumentError(
        "binary trace needs between 1 and " + std::to_string(kMaxColumns) +
        " columns, got " + std::to_string(column_names.size()));
  }
  size_t schema_len = 0;
  for (const auto& name : column_names) {
    if (name.size() > 0xffff) {
      return InvalidArgumentError("column name longer than 65535 bytes");
    }
    schema_len += 2 + name.size();
  }
  if (schema_len > kMaxSchemaLen) {
    return InvalidArgumentError("schema section too large");
  }
  if (options.block_rows < 1 ||
      options.block_rows > static_cast<int64_t>(kMaxBlockRows)) {
    return InvalidArgumentError(
        "block_rows must be in [1, " + std::to_string(kMaxBlockRows) +
        "], got " + std::to_string(options.block_rows));
  }
  if (options.queue_blocks < 1) {
    return InvalidArgumentError("queue_blocks must be >= 1");
  }
  if (options.compression == BlockCompression::kLz4 && !Lz4Available()) {
    return UnimplementedError(
        "LZ4 compression requested but this build has no LZ4 support");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  auto writer = std::unique_ptr<BlockWriter>(
      new BlockWriter(file, std::move(column_names), options));
  DCV_RETURN_IF_ERROR(writer->EnqueueWrite(
      EncodeHeader(writer->column_names_, writer->options_)));
  return writer;
}

BlockWriter::BlockWriter(std::FILE* file,
                         std::vector<std::string> column_names,
                         const WriterOptions& options)
    : file_(file),
      column_names_(std::move(column_names)),
      options_(options),
      pending_(column_names_.size()) {
  for (auto& col : pending_) {
    col.reserve(static_cast<size_t>(options_.block_rows));
  }
  if (options_.async) {
    writer_thread_ = std::thread([this] { WriterLoop(); });
  }
}

BlockWriter::~BlockWriter() {
  if (!finished_) {
    // Abandoned writer: stop the thread and close the file. The file is
    // missing its sentinel/footer, which readers report as truncation —
    // exactly right for an aborted write.
    if (options_.async) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      queue_cv_.notify_all();
      if (writer_thread_.joinable()) {
        writer_thread_.join();
      }
    }
    std::fclose(file_);
  }
}

Status BlockWriter::AppendRow(const std::vector<int64_t>& values) {
  if (values.size() != column_names_.size()) {
    return InvalidArgumentError(
        "row has " + std::to_string(values.size()) + " values but the file "
        "has " + std::to_string(column_names_.size()) + " columns");
  }
  if (finished_) {
    return FailedPreconditionError("AppendRow after Finish");
  }
  for (size_t c = 0; c < values.size(); ++c) {
    pending_[c].push_back(values[c]);
  }
  if (++pending_rows_ >= options_.block_rows) {
    return FlushBlock();
  }
  return OkStatus();
}

Status BlockWriter::AppendColumns(
    const std::vector<std::vector<int64_t>>& columns, int64_t rows) {
  if (columns.size() != column_names_.size()) {
    return InvalidArgumentError("column-batch width mismatch");
  }
  if (finished_) {
    return FailedPreconditionError("AppendColumns after Finish");
  }
  for (const auto& col : columns) {
    if (static_cast<int64_t>(col.size()) != rows) {
      return InvalidArgumentError("ragged column batch");
    }
  }
  int64_t done = 0;
  while (done < rows) {
    const int64_t take =
        std::min(rows - done, options_.block_rows - pending_rows_);
    for (size_t c = 0; c < columns.size(); ++c) {
      pending_[c].insert(pending_[c].end(),
                         columns[c].begin() + done,
                         columns[c].begin() + done + take);
    }
    pending_rows_ += take;
    done += take;
    if (pending_rows_ >= options_.block_rows) {
      DCV_RETURN_IF_ERROR(FlushBlock());
    }
  }
  return OkStatus();
}

Status BlockWriter::FlushBlock() {
  if (pending_rows_ == 0) {
    return OkStatus();
  }
  std::string raw;
  EncodeColumns(options_.codec, pending_, pending_rows_, &raw);
  const size_t raw_len = raw.size();
  std::string payload;
  if (options_.compression == BlockCompression::kLz4) {
    DCV_RETURN_IF_ERROR(Lz4Compress(raw, &payload));
  } else {
    payload = std::move(raw);
  }
  if (payload.size() > kMaxBlockPayload || raw_len > kMaxBlockPayload) {
    return InternalError("encoded block exceeds kMaxBlockPayload");
  }

  std::string block;
  AppendLe32(static_cast<uint32_t>(payload.size()), &block);
  AppendLe32(static_cast<uint32_t>(pending_rows_), &block);
  AppendLe32(static_cast<uint32_t>(raw_len), &block);
  AppendLe32(Crc32(payload), &block);
  block += payload;

  index_.push_back({static_cast<uint64_t>(next_offset_),
                    static_cast<uint64_t>(total_rows_),
                    static_cast<uint32_t>(pending_rows_)});
  total_rows_ += pending_rows_;
  ++blocks_;
  pending_rows_ = 0;
  for (auto& col : pending_) {
    col.clear();
  }
  return EnqueueWrite(std::move(block));
}

Status BlockWriter::Finish() {
  if (finished_) {
    return FailedPreconditionError("Finish called twice");
  }
  Status flush = FlushBlock();
  if (flush.ok()) {
    // Sentinel + footer.
    std::string tail;
    AppendLe32(0, &tail);  // End-of-data sentinel.
    const uint64_t footer_offset = static_cast<uint64_t>(next_offset_) + 4;
    std::string footer;
    AppendLe32(static_cast<uint32_t>(index_.size()), &footer);
    for (const auto& e : index_) {
      AppendLe64(e.offset, &footer);
      AppendLe64(e.first_row, &footer);
      AppendLe32(e.rows, &footer);
    }
    AppendLe64(static_cast<uint64_t>(total_rows_), &footer);
    AppendLe32(Crc32(footer), &footer);
    tail += footer;
    AppendLe64(footer_offset, &tail);
    AppendLe32(kEndMagic, &tail);
    flush = EnqueueWrite(std::move(tail));
  }

  // Drain and stop the writer thread, then close.
  if (options_.async) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    if (writer_thread_.joinable()) {
      writer_thread_.join();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (flush.ok() && !writer_status_.ok()) {
      flush = writer_status_;
    }
  }
  finished_ = true;
  const bool flush_ok = std::fflush(file_) == 0;
  const bool close_ok = std::fclose(file_) == 0;
  if (flush.ok() && (!flush_ok || !close_ok)) {
    return InternalError("error flushing binary trace to disk");
  }
  return flush;
}

Status BlockWriter::EnqueueWrite(std::string bytes) {
  next_offset_ += static_cast<int64_t>(bytes.size());
  if (!options_.async) {
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return InternalError("short write to binary trace file");
    }
    return OkStatus();
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!writer_status_.ok()) {
    return writer_status_;
  }
  space_cv_.wait(lock, [this] {
    return queue_.size() < static_cast<size_t>(options_.queue_blocks) ||
           !writer_status_.ok();
  });
  if (!writer_status_.ok()) {
    return writer_status_;
  }
  queue_.push_back(std::move(bytes));
  lock.unlock();
  queue_cv_.notify_one();
  return OkStatus();
}

void BlockWriter::WriterLoop() {
  for (;;) {
    std::string bytes;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ and fully drained.
      }
      bytes = std::move(queue_.front());
      queue_.pop_front();
    }
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size();
    if (!ok) {
      std::lock_guard<std::mutex> lock(mu_);
      if (writer_status_.ok()) {
        writer_status_ = InternalError("short write to binary trace file");
      }
      // Keep draining (and discarding) so the producer never deadlocks.
      queue_.clear();
    }
    space_cv_.notify_all();
  }
}

}  // namespace dcv::io
