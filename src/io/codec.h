#ifndef DCV_IO_CODEC_H_
#define DCV_IO_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/format.h"

namespace dcv::io {

/// One decoded block in structure-of-arrays form: columns[c][r] is row r of
/// column c. Every column has exactly `rows` entries.
struct ColumnBlock {
  int64_t first_row = 0;  ///< Global row index of row 0 of this block.
  int64_t rows = 0;
  std::vector<std::vector<int64_t>> columns;
};

/// Appends the codec encoding of `columns` (each with `rows` entries) to
/// `*out`. Column order is preserved. `rows` >= 1; the caller (BlockWriter)
/// guarantees rectangular input.
void EncodeColumns(RowCodec codec,
                   const std::vector<std::vector<int64_t>>& columns,
                   int64_t rows, std::string* out);

/// Decodes a payload produced by EncodeColumns into `columns` (resized to
/// `num_columns`, each with exactly `rows` values). Fails with
/// kInvalidArgument on any malformed payload: truncated varints, runs that
/// over- or undershoot `rows`, or trailing bytes after the last column —
/// a decode either recovers every value bit-exactly or errors, never
/// partially succeeds.
Status DecodeColumns(RowCodec codec, const uint8_t* data, size_t len,
                     int64_t num_columns, int64_t rows,
                     std::vector<std::vector<int64_t>>* columns);

}  // namespace dcv::io

#endif  // DCV_IO_CODEC_H_
