#ifndef DCV_IO_COMPRESS_H_
#define DCV_IO_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dcv::io {

// LZ4 block compression behind a CMake-detected dependency. When the build
// found no liblz4, every entry point stays present and returns a clear
// kUnimplemented error instead of failing to link — readers and writers
// degrade to the uncompressed path, and a file that *requires* LZ4 is
// rejected with a message naming the missing dependency.

/// True when this binary was built against liblz4 (DCV_HAVE_LZ4).
bool Lz4Available();

/// Compresses `raw` into `*out` (replacing its contents). Fails with
/// kUnimplemented when built without LZ4. Note LZ4 can expand
/// incompressible input slightly; callers who care should compare sizes
/// and fall back to storing raw (the BlockWriter does not bother — trace
/// payloads compress).
Status Lz4Compress(const std::string& raw, std::string* out);

/// Decompresses exactly `raw_len` bytes out of data[0, len) into `*out`.
/// Fails with kUnimplemented without LZ4, and with kInvalidArgument on any
/// malformed stream (never reads or writes out of bounds — safe on
/// attacker-controlled input).
Status Lz4Decompress(const uint8_t* data, size_t len, size_t raw_len,
                     std::string* out);

}  // namespace dcv::io

#endif  // DCV_IO_COMPRESS_H_
