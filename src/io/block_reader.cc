#include "io/block_reader.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/crc32.h"
#include "io/compress.h"

namespace dcv::io {
namespace {

/// Footer entries are 20 bytes each; cap the count so a corrupt footer
/// cannot size an allocation from garbage (4M blocks of 4096 rows is a
/// 17-billion-row trace — far past anything real).
constexpr uint32_t kMaxFooterBlocks = 1u << 22;

constexpr char kTruncated[] = "truncated file: ";

}  // namespace

Result<std::unique_ptr<BlockReader>> BlockReader::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  // Fixed preamble: magic, version, codec, compression, reserved,
  // num_columns, schema_len.
  uint8_t pre[16];
  if (std::fread(pre, 1, sizeof(pre), file) != sizeof(pre)) {
    std::fclose(file);
    return InvalidArgumentError(std::string(kTruncated) +
                                "EOF inside the file header");
  }
  if (ReadLe32(pre) != kFileMagic) {
    std::fclose(file);
    return InvalidArgumentError("not a dcv binary trace (bad magic)");
  }
  if (pre[4] != kFormatVersion) {
    std::fclose(file);
    return InvalidArgumentError(
        "unsupported binary trace version " + std::to_string(pre[4]) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")");
  }
  if (pre[5] > static_cast<uint8_t>(RowCodec::kZoh)) {
    std::fclose(file);
    return InvalidArgumentError("unknown row codec byte " +
                                std::to_string(pre[5]));
  }
  const RowCodec codec = static_cast<RowCodec>(pre[5]);
  if (pre[6] > static_cast<uint8_t>(BlockCompression::kLz4)) {
    std::fclose(file);
    return InvalidArgumentError("unknown compression byte " +
                                std::to_string(pre[6]));
  }
  const BlockCompression compression = static_cast<BlockCompression>(pre[6]);
  if (pre[7] != 0) {
    std::fclose(file);
    return InvalidArgumentError("reserved header byte is not zero");
  }
  if (compression == BlockCompression::kLz4 && !Lz4Available()) {
    std::fclose(file);
    return UnimplementedError(
        "this file uses LZ4 block compression but the build has no LZ4 "
        "support (liblz4 was not found at configure time)");
  }
  const uint32_t num_columns = ReadLe32(pre + 8);
  const uint32_t schema_len = ReadLe32(pre + 12);
  if (num_columns == 0 || num_columns > kMaxColumns) {
    std::fclose(file);
    return InvalidArgumentError("over-length header: column count " +
                                std::to_string(num_columns));
  }
  if (schema_len > kMaxSchemaLen || schema_len < 2 * num_columns) {
    std::fclose(file);
    return InvalidArgumentError("over-length header: schema length " +
                                std::to_string(schema_len) + " for " +
                                std::to_string(num_columns) + " columns");
  }
  std::string schema(schema_len, '\0');
  if (std::fread(schema.data(), 1, schema_len, file) != schema_len) {
    std::fclose(file);
    return InvalidArgumentError(std::string(kTruncated) +
                                "EOF inside the schema section");
  }
  uint8_t crc_bytes[4];
  if (std::fread(crc_bytes, 1, 4, file) != 4) {
    std::fclose(file);
    return InvalidArgumentError(std::string(kTruncated) +
                                "EOF before the header CRC");
  }
  uint32_t crc = Crc32(pre, sizeof(pre));
  crc = Crc32(schema.data(), schema.size(), crc);
  if (crc != ReadLe32(crc_bytes)) {
    std::fclose(file);
    return InvalidArgumentError("header CRC mismatch (corrupt file)");
  }
  // Parse the name section; it must consume schema_len exactly.
  std::vector<std::string> names;
  names.reserve(num_columns);
  size_t pos = 0;
  for (uint32_t c = 0; c < num_columns; ++c) {
    if (pos + 2 > schema.size()) {
      std::fclose(file);
      return InvalidArgumentError("corrupt schema: name table truncated");
    }
    const uint16_t len =
        ReadLe16(reinterpret_cast<const uint8_t*>(schema.data()) + pos);
    pos += 2;
    if (pos + len > schema.size()) {
      std::fclose(file);
      return InvalidArgumentError("corrupt schema: name overruns section");
    }
    names.emplace_back(schema.substr(pos, len));
    pos += len;
  }
  if (pos != schema.size()) {
    std::fclose(file);
    return InvalidArgumentError("corrupt schema: trailing bytes");
  }
  const long data_start = std::ftell(file);
  if (data_start < 0) {
    std::fclose(file);
    return InternalError("ftell failed on binary trace");
  }
  return std::unique_ptr<BlockReader>(new BlockReader(
      file, std::move(names), codec, compression, data_start));
}

BlockReader::BlockReader(std::FILE* file,
                         std::vector<std::string> column_names,
                         RowCodec codec, BlockCompression compression,
                         int64_t data_start)
    : file_(file),
      column_names_(std::move(column_names)),
      codec_(codec),
      compression_(compression),
      data_start_(data_start) {}

BlockReader::~BlockReader() { std::fclose(file_); }

Status BlockReader::ReadExact(void* buf, size_t n, const char* what) {
  if (std::fread(buf, 1, n, file_) != n) {
    if (std::feof(file_)) {
      return InvalidArgumentError(std::string(kTruncated) + "EOF inside " +
                                  what);
    }
    return InternalError(std::string("I/O error reading ") + what);
  }
  return OkStatus();
}

Result<bool> BlockReader::Next(ColumnBlock* out) {
  if (end_seen_) {
    return false;
  }
  uint8_t prefix[4];
  DCV_RETURN_IF_ERROR(ReadExact(prefix, 4, "a block length prefix"));
  const uint32_t payload_len = ReadLe32(prefix);
  if (payload_len == 0) {
    // End-of-data sentinel: validate the footer before declaring the scan
    // clean, and cross-check the row total against what we actually read.
    const long footer_pos = std::ftell(file_);
    if (footer_pos < 0) {
      return InternalError("ftell failed on binary trace");
    }
    DCV_RETURN_IF_ERROR(ReadFooterAt(footer_pos));
    if (next_row_ != total_rows_) {
      return InvalidArgumentError(
          "corrupt file: footer claims " + std::to_string(total_rows_) +
          " rows but the data blocks held " + std::to_string(next_row_));
    }
    end_seen_ = true;
    return false;
  }
  if (payload_len > kMaxBlockPayload) {
    return InvalidArgumentError(
        "over-length block: payload length " + std::to_string(payload_len) +
        " exceeds the format cap of " + std::to_string(kMaxBlockPayload));
  }
  uint8_t head[12];
  DCV_RETURN_IF_ERROR(ReadExact(head, sizeof(head), "a block header"));
  const uint32_t rows = ReadLe32(head);
  const uint32_t raw_len = ReadLe32(head + 4);
  const uint32_t expect_crc = ReadLe32(head + 8);
  if (rows == 0 || rows > kMaxBlockRows) {
    return InvalidArgumentError("over-length block: row count " +
                                std::to_string(rows));
  }
  if (raw_len > kMaxBlockPayload) {
    return InvalidArgumentError("over-length block: raw length " +
                                std::to_string(raw_len));
  }
  payload_buf_.resize(payload_len);
  DCV_RETURN_IF_ERROR(
      ReadExact(payload_buf_.data(), payload_len, "a block payload"));
  if (Crc32(payload_buf_) != expect_crc) {
    return InvalidArgumentError("block CRC mismatch (corrupt file)");
  }
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(payload_buf_.data());
  size_t raw_size = payload_buf_.size();
  if (compression_ == BlockCompression::kLz4) {
    DCV_RETURN_IF_ERROR(Lz4Decompress(raw, raw_size, raw_len, &raw_buf_));
    raw = reinterpret_cast<const uint8_t*>(raw_buf_.data());
    raw_size = raw_buf_.size();
  } else if (raw_len != payload_len) {
    return InvalidArgumentError(
        "corrupt block: raw length differs from payload length in an "
        "uncompressed file");
  }
  DCV_RETURN_IF_ERROR(DecodeColumns(
      codec_, raw, raw_size, static_cast<int64_t>(column_names_.size()),
      static_cast<int64_t>(rows), &out->columns));
  out->first_row = next_row_;
  out->rows = static_cast<int64_t>(rows);
  next_row_ += static_cast<int64_t>(rows);
  return true;
}

Status BlockReader::ReadFooterAt(int64_t footer_pos) {
  uint8_t count_bytes[4];
  DCV_RETURN_IF_ERROR(ReadExact(count_bytes, 4, "the footer"));
  const uint32_t num_blocks = ReadLe32(count_bytes);
  if (num_blocks > kMaxFooterBlocks) {
    return InvalidArgumentError("over-length footer: block count " +
                                std::to_string(num_blocks));
  }
  std::string entries(static_cast<size_t>(num_blocks) * 20 + 8, '\0');
  DCV_RETURN_IF_ERROR(
      ReadExact(entries.data(), entries.size(), "the footer index"));
  uint8_t crc_bytes[4];
  DCV_RETURN_IF_ERROR(ReadExact(crc_bytes, 4, "the footer CRC"));
  uint32_t crc = Crc32(count_bytes, 4);
  crc = Crc32(entries.data(), entries.size(), crc);
  if (crc != ReadLe32(crc_bytes)) {
    return InvalidArgumentError("footer CRC mismatch (corrupt file)");
  }
  uint8_t tail[12];
  DCV_RETURN_IF_ERROR(ReadExact(tail, sizeof(tail), "the footer tail"));
  if (ReadLe32(tail + 8) != kEndMagic) {
    return InvalidArgumentError("corrupt file: bad end marker");
  }
  if (ReadLe64(tail) != static_cast<uint64_t>(footer_pos)) {
    return InvalidArgumentError(
        "corrupt file: footer self-offset does not match its position");
  }

  const uint8_t* p = reinterpret_cast<const uint8_t*>(entries.data());
  std::vector<BlockIndexEntry> index;
  index.reserve(num_blocks);
  int64_t expect_row = 0;
  uint64_t prev_offset = 0;
  for (uint32_t i = 0; i < num_blocks; ++i) {
    BlockIndexEntry e;
    e.offset = ReadLe64(p);
    e.first_row = static_cast<int64_t>(ReadLe64(p + 8));
    e.rows = static_cast<int64_t>(ReadLe32(p + 16));
    p += 20;
    if (e.offset < static_cast<uint64_t>(data_start_) ||
        (i > 0 && e.offset <= prev_offset) || e.rows < 1 ||
        e.rows > static_cast<int64_t>(kMaxBlockRows) ||
        e.first_row != expect_row) {
      return InvalidArgumentError("corrupt footer: inconsistent index entry " +
                                  std::to_string(i));
    }
    prev_offset = e.offset;
    expect_row += e.rows;
    index.push_back(e);
  }
  const int64_t footer_total = static_cast<int64_t>(ReadLe64(p));
  if (footer_total != expect_row) {
    return InvalidArgumentError(
        "corrupt footer: total row count disagrees with the index");
  }
  total_rows_ = footer_total;
  index_ = std::move(index);
  index_loaded_ = true;
  return OkStatus();
}

Status BlockReader::LoadIndex() {
  if (index_loaded_) {
    return OkStatus();
  }
  const long saved = std::ftell(file_);
  if (saved < 0 || std::fseek(file_, 0, SEEK_END) != 0) {
    return InternalError("seek failed on binary trace");
  }
  const long size = std::ftell(file_);
  // Smallest complete file: header + sentinel(4) + empty footer(16) +
  // tail(12).
  if (size < data_start_ + 4 + 16 + 12) {
    std::fseek(file_, saved, SEEK_SET);
    return InvalidArgumentError(std::string(kTruncated) +
                                "no room for a footer");
  }
  if (std::fseek(file_, size - 12, SEEK_SET) != 0) {
    return InternalError("seek failed on binary trace");
  }
  uint8_t tail[12];
  Status s = ReadExact(tail, sizeof(tail), "the footer tail");
  if (s.ok() && ReadLe32(tail + 8) != kEndMagic) {
    s = InvalidArgumentError(
        "corrupt or truncated file: bad end marker (was the writer "
        "interrupted before Finish?)");
  }
  int64_t footer_pos = 0;
  if (s.ok()) {
    footer_pos = static_cast<int64_t>(ReadLe64(tail));
    if (footer_pos < data_start_ + 4 || footer_pos > size - 12) {
      s = InvalidArgumentError("corrupt file: footer offset out of range");
    }
  }
  if (s.ok()) {
    // The 4 bytes before the footer must be the end-of-data sentinel.
    uint8_t sentinel[4];
    if (std::fseek(file_, footer_pos - 4, SEEK_SET) != 0) {
      s = InternalError("seek failed on binary trace");
    } else {
      s = ReadExact(sentinel, 4, "the end sentinel");
      if (s.ok() && ReadLe32(sentinel) != 0) {
        s = InvalidArgumentError(
            "corrupt file: footer is not preceded by the end sentinel");
      }
    }
  }
  if (s.ok()) {
    s = ReadFooterAt(footer_pos);
  }
  if (std::fseek(file_, saved, SEEK_SET) != 0 && s.ok()) {
    s = InternalError("seek failed on binary trace");
  }
  return s;
}

Status BlockReader::SeekToRow(int64_t row) {
  DCV_RETURN_IF_ERROR(LoadIndex());
  if (row < 0 || row >= total_rows_) {
    return OutOfRangeError("row " + std::to_string(row) +
                           " out of range for a trace of " +
                           std::to_string(total_rows_) + " rows");
  }
  auto it = std::upper_bound(
      index_.begin(), index_.end(), row,
      [](int64_t r, const BlockIndexEntry& e) { return r < e.first_row; });
  const BlockIndexEntry& entry = *(it - 1);
  if (std::fseek(file_, static_cast<long>(entry.offset), SEEK_SET) != 0) {
    return InternalError("seek failed on binary trace");
  }
  next_row_ = entry.first_row;
  end_seen_ = false;
  return OkStatus();
}

}  // namespace dcv::io
