#ifndef DCV_IO_BLOCK_READER_H_
#define DCV_IO_BLOCK_READER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/codec.h"
#include "io/format.h"

namespace dcv::io {

/// One footer index entry: where a block lives and which rows it holds.
struct BlockIndexEntry {
  uint64_t offset = 0;     ///< File offset of the block's length prefix.
  int64_t first_row = 0;
  int64_t rows = 0;
};

/// Streaming reader of the dcvb container. The sequential scan path
/// (Open + Next until false) holds exactly one block in memory — O(1) in
/// the trace length — which is what lets multi-GB traces replay at disk
/// speed. The footer index (LoadIndex / SeekToRow) adds random access for
/// tools that want a slice without scanning the prefix.
///
/// Corruption contract (regression-tested with bit-flipped and truncated
/// files): every malformed input yields a Status error naming the problem,
/// never a crash, hang, unbounded allocation, or silent partial read.
/// Distinct failure modes keep distinct messages, mirroring the socket
/// FrameReader's clean-EOF vs truncated_frame split:
///   * "truncated file"  — EOF inside a header, block, footer, or before
///                         the end sentinel (an aborted writer, a cut
///                         download);
///   * "CRC mismatch"    — bit rot inside an intact structure;
///   * "over-length"     — a length prefix beyond the format's bounds
///                         (corrupt or hostile; rejected before any
///                         allocation is sized from it).
class BlockReader {
 public:
  /// Opens and validates the header (magic, version, codec, compression,
  /// schema, header CRC). A file that needs LZ4 in a build without it is
  /// rejected here with kUnimplemented.
  static Result<std::unique_ptr<BlockReader>> Open(const std::string& path);

  ~BlockReader();

  BlockReader(const BlockReader&) = delete;
  BlockReader& operator=(const BlockReader&) = delete;

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  RowCodec codec() const { return codec_; }
  BlockCompression compression() const { return compression_; }

  /// Reads, verifies (CRC), decompresses, and decodes the next block.
  /// Returns true with `*out` filled; false at the clean end of data
  /// (sentinel reached — the footer is then read and validated too, so a
  /// scan that returns false has proven the whole file intact); an error
  /// Status on any corruption.
  Result<bool> Next(ColumnBlock* out);

  /// Loads the block index from the footer (seeks to the file end and
  /// back). Idempotent. Required before index()/total_rows()/SeekToRow.
  Status LoadIndex();

  /// Total rows in the file, from the footer. LoadIndex must have run.
  int64_t total_rows() const { return total_rows_; }

  const std::vector<BlockIndexEntry>& index() const { return index_; }

  /// Positions the stream so the next Next() returns the block containing
  /// global row `row` (callers skip within the block via
  /// ColumnBlock::first_row). Runs LoadIndex if needed.
  Status SeekToRow(int64_t row);

 private:
  BlockReader(std::FILE* file, std::vector<std::string> column_names,
              RowCodec codec, BlockCompression compression,
              int64_t data_start);

  /// Reads exactly n bytes into buf; distinguishes EOF ("truncated file")
  /// from I/O errors.
  Status ReadExact(void* buf, size_t n, const char* what);

  /// Parses + validates the footer assuming the stream is positioned at
  /// its first byte (just past the sentinel).
  Status ReadFooterAt(int64_t footer_pos);

  std::FILE* file_;
  std::vector<std::string> column_names_;
  RowCodec codec_;
  BlockCompression compression_;
  int64_t data_start_;   ///< File offset of the first block.
  int64_t next_row_ = 0; ///< Global row index of the next block's row 0.
  bool index_loaded_ = false;
  bool end_seen_ = false;
  int64_t total_rows_ = 0;
  std::vector<BlockIndexEntry> index_;
  std::string payload_buf_;  ///< Reused across blocks (O(1) memory scan).
  std::string raw_buf_;
};

}  // namespace dcv::io

#endif  // DCV_IO_BLOCK_READER_H_
