#ifndef DCV_HISTOGRAM_GK_SKETCH_H_
#define DCV_HISTOGRAM_GK_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "histogram/equi_depth.h"

namespace dcv {

/// Greenwald-Khanna streaming quantile summary (SIGMOD'01), the algorithm the
/// paper cites ([13], §3.2) for constructing per-site histograms over a
/// stream of X_i values in sublinear space.
///
/// Guarantees: after n inserts, Quantile(phi) returns a value whose rank is
/// within eps*n of ceil(phi*n), using O((1/eps) * log(eps*n)) tuples.
class GkSketch {
 public:
  /// eps in (0, 1): the rank-error fraction.
  explicit GkSketch(double eps);

  /// Inserts one observation.
  void Insert(int64_t value);

  /// Number of observations inserted so far.
  int64_t count() const { return count_; }

  /// Number of summary tuples currently held (space usage).
  size_t num_tuples() const { return tuples_.size(); }

  /// A value whose rank is within eps*n of ceil(phi*n), phi in [0, 1].
  /// Fails on an empty sketch.
  Result<int64_t> Quantile(double phi) const;

  /// Approximate rank of `value`: an estimate of #{x_i <= value} within
  /// eps*n. Monotone non-decreasing in `value`. 0 on an empty sketch.
  int64_t ApproxRank(int64_t value) const;

  /// Converts the summary into an equi-depth histogram with `num_buckets`
  /// buckets over [0, domain_max] (bucket boundaries at quantiles
  /// 1/k, 2/k, ..., 1). This is the bridge from streaming estimation to the
  /// threshold-selection algorithms.
  Result<EquiDepthHistogram> ToEquiDepthHistogram(int num_buckets,
                                                  int64_t domain_max) const;

 private:
  struct Tuple {
    int64_t value;
    int64_t g;      // rank(this) - rank(previous) lower-bound gap.
    int64_t delta;  // rank uncertainty within the tuple.
  };

  void Compress();

  double eps_;
  int64_t count_ = 0;
  int64_t compress_period_;
  std::vector<Tuple> tuples_;  // Sorted by value.
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_GK_SKETCH_H_
