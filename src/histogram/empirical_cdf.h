#ifndef DCV_HISTOGRAM_EMPIRICAL_CDF_H_
#define DCV_HISTOGRAM_EMPIRICAL_CDF_H_

#include <cstdint>
#include <vector>

#include "histogram/distribution.h"

namespace dcv {

/// The exact empirical CDF of a sample set: F(v) = #{x_i <= v}. This keeps
/// every observation (sorted), so it is the ground-truth model used by tests
/// and by the "how good is a coarse histogram" ablation; production code
/// should prefer the histogram models.
class EmpiricalCdf : public DistributionModel {
 public:
  /// Builds from raw observations (clamped to [0, +inf)); `domain_max` is
  /// the declared M. Observations above M are clamped to M.
  EmpiricalCdf(std::vector<int64_t> observations, int64_t domain_max);

  int64_t domain_max() const override { return domain_max_; }
  double total_weight() const override {
    return static_cast<double>(sorted_.size());
  }
  double CumulativeAt(int64_t v) const override;
  int64_t MinValueWithCumAtLeast(double target) const override;

  /// Number of stored observations.
  size_t size() const { return sorted_.size(); }

 private:
  std::vector<int64_t> sorted_;
  int64_t domain_max_;
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_EMPIRICAL_CDF_H_
