#ifndef DCV_HISTOGRAM_EQUI_WIDTH_H_
#define DCV_HISTOGRAM_EQUI_WIDTH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "histogram/distribution.h"

namespace dcv {

/// A streaming equi-width histogram over the integer domain [0, M] with a
/// fixed number of equal-width buckets. F(v) within a bucket is linearly
/// interpolated (the standard uniform-within-bucket assumption).
///
/// This is the cheap, fully-streaming model; equi-depth (see equi_depth.h)
/// is what the paper's experiments use, since it adapts resolution to the
/// data's density.
class EquiWidthHistogram : public DistributionModel {
 public:
  /// Creates an empty histogram. Fails if num_buckets < 1 or domain_max < 0.
  static Result<EquiWidthHistogram> Create(int64_t domain_max,
                                           int num_buckets);

  /// Adds one observation with unit weight (clamped into [0, M]).
  void Add(int64_t value);

  /// Adds one observation with the given non-negative weight.
  void AddWeighted(int64_t value, double weight);

  /// Merges another histogram with identical shape (same M, same buckets).
  Status Merge(const EquiWidthHistogram& other);

  int num_buckets() const { return static_cast<int>(counts_.size()); }

  int64_t domain_max() const override { return domain_max_; }
  double total_weight() const override { return total_; }
  double CumulativeAt(int64_t v) const override;

 private:
  EquiWidthHistogram(int64_t domain_max, int num_buckets);

  // Bucket b covers values [b*width_lo(b), ...]; computed from indices so
  // rounding never leaves gaps.
  int BucketFor(int64_t value) const;
  // First value of bucket b.
  int64_t BucketLo(int b) const;
  // Last value of bucket b (inclusive).
  int64_t BucketHi(int b) const;

  int64_t domain_max_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_EQUI_WIDTH_H_
