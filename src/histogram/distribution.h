#ifndef DCV_HISTOGRAM_DISTRIBUTION_H_
#define DCV_HISTOGRAM_DISTRIBUTION_H_

#include <cstdint>
#include <memory>

namespace dcv {

/// A cumulative-frequency model F for one site variable X over the integer
/// domain [0, M]. This is the interface the threshold-selection algorithms
/// consume (paper §3.2): F(v) is the (possibly interpolated) number of past
/// observations with value <= v, F is non-decreasing, and F(M) is the total
/// observation weight.
///
/// Implementations: exact empirical CDFs, equi-width histograms, equi-depth
/// histograms, and sketch-backed models.
class DistributionModel {
 public:
  virtual ~DistributionModel() = default;

  /// Domain upper bound M (inclusive). X takes values in [0, M].
  virtual int64_t domain_max() const = 0;

  /// Total observation weight, == CumulativeAt(domain_max()).
  virtual double total_weight() const = 0;

  /// F(v): cumulative frequency of observations <= v. Monotone
  /// non-decreasing in v. Values below 0 yield 0; values above M yield
  /// total_weight().
  virtual double CumulativeAt(int64_t v) const = 0;

  /// P(X <= v) = F(v) / F(M); 0 when the model is empty.
  double ProbabilityAtMost(int64_t v) const {
    double total = total_weight();
    return total > 0.0 ? CumulativeAt(v) / total : 0.0;
  }

  /// Smallest v in [0, M] with F(v) >= target, or M + 1 when even F(M) falls
  /// short. Binary search over CumulativeAt; O(log M). Implementations with
  /// cheaper inverses may override.
  virtual int64_t MinValueWithCumAtLeast(double target) const;
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_DISTRIBUTION_H_
