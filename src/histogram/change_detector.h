#ifndef DCV_HISTOGRAM_CHANGE_DETECTOR_H_
#define DCV_HISTOGRAM_CHANGE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/result.h"

namespace dcv {

/// Two-sample Kolmogorov-Smirnov statistic between empirical CDFs:
/// sup_v |F_a(v) - F_b(v)|. Both samples may be unsorted. Returns a value
/// in [0, 1]; fails when either sample is empty.
Result<double> KsStatistic(std::vector<int64_t> a, std::vector<int64_t> b);

/// Critical KS distance at significance alpha for sample sizes (n, m):
/// c(alpha) * sqrt((n + m) / (n * m)), with the standard asymptotic
/// c(alpha) = sqrt(-ln(alpha / 2) / 2).
double KsCriticalValue(size_t n, size_t m, double alpha);

/// Streaming distribution-change detector in the style of Kifer, Ben-David &
/// Gehrke (VLDB'04), cited by the paper (§3.2, [17]) as the trigger for
/// recomputing per-site histograms and local thresholds.
///
/// It keeps a *reference window* (a snapshot of the distribution at the last
/// reset) and a *current window* (the most recent `window_size`
/// observations). Once the current window is full, every new observation
/// recomputes the KS distance between the two windows; when it exceeds the
/// critical value at the configured significance, a change is reported.
/// Callers typically respond by rebuilding their histogram and calling
/// `Reset` with fresh data.
class ChangeDetector {
 public:
  struct Options {
    size_t window_size = 256;  ///< Observations per window.
    double alpha = 0.001;      ///< KS significance level (lower = less
                               ///< sensitive).
    /// Minimum observations between consecutive alarms, to avoid re-firing
    /// while the caller's rebuild is in flight.
    size_t cooldown = 64;
  };

  explicit ChangeDetector(Options options);

  /// Seeds the reference window and clears the current one. Typically called
  /// with the data that built the current histogram.
  void Reset(std::vector<int64_t> reference);

  /// Feeds one observation; returns true when a distribution change is
  /// detected at this observation.
  bool Observe(int64_t value);

  /// Most recent KS distance computed (0 before the first full comparison).
  double last_distance() const { return last_distance_; }

  /// The detection threshold currently in force.
  double threshold() const;

  /// Number of change alarms raised since construction.
  int64_t num_alarms() const { return num_alarms_; }

  /// Contents of the current window (most recent observations).
  std::vector<int64_t> CurrentWindow() const;

 private:
  Options options_;
  std::vector<int64_t> reference_;  // Sorted.
  std::deque<int64_t> current_;
  double last_distance_ = 0.0;
  int64_t num_alarms_ = 0;
  size_t since_last_alarm_ = 0;
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_CHANGE_DETECTOR_H_
