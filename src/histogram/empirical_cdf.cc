#include "histogram/empirical_cdf.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace dcv {

EmpiricalCdf::EmpiricalCdf(std::vector<int64_t> observations,
                           int64_t domain_max)
    : sorted_(std::move(observations)), domain_max_(domain_max) {
  for (auto& v : sorted_) {
    v = Clamp<int64_t>(v, 0, domain_max_);
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::CumulativeAt(int64_t v) const {
  if (v < 0) {
    return 0.0;
  }
  if (v >= domain_max_) {
    return static_cast<double>(sorted_.size());
  }
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(it - sorted_.begin());
}

int64_t EmpiricalCdf::MinValueWithCumAtLeast(double target) const {
  if (target <= 0.0) {
    return 0;
  }
  double total = static_cast<double>(sorted_.size());
  if (total < target) {
    return domain_max_ + 1;
  }
  // The k-th order statistic (1-based) is the smallest v with F(v) >= k.
  size_t k = static_cast<size_t>(std::ceil(target));
  if (k == 0) {
    return 0;
  }
  return sorted_[k - 1];
}

}  // namespace dcv
