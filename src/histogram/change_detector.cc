#include "histogram/change_detector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dcv {

Result<double> KsStatistic(std::vector<int64_t> a, std::vector<int64_t> b) {
  if (a.empty() || b.empty()) {
    return InvalidArgumentError("KS statistic needs nonempty samples");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  size_t i = 0;
  size_t j = 0;
  double max_gap = 0.0;
  while (i < a.size() && j < b.size()) {
    int64_t v = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == v) {
      ++i;
    }
    while (j < b.size() && b[j] == v) {
      ++j;
    }
    double fa = static_cast<double>(i) / na;
    double fb = static_cast<double>(j) / nb;
    max_gap = std::max(max_gap, std::fabs(fa - fb));
  }
  return max_gap;
}

double KsCriticalValue(size_t n, size_t m, double alpha) {
  DCV_CHECK(n > 0 && m > 0) << "KS critical value needs positive sizes";
  DCV_CHECK(alpha > 0.0 && alpha < 1.0) << "alpha must be in (0,1)";
  double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  double nn = static_cast<double>(n);
  double mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

ChangeDetector::ChangeDetector(Options options) : options_(options) {
  DCV_CHECK(options_.window_size >= 2) << "window_size must be >= 2";
}

void ChangeDetector::Reset(std::vector<int64_t> reference) {
  reference_ = std::move(reference);
  std::sort(reference_.begin(), reference_.end());
  current_.clear();
  last_distance_ = 0.0;
  since_last_alarm_ = 0;
}

double ChangeDetector::threshold() const {
  size_t n = reference_.empty() ? options_.window_size : reference_.size();
  return KsCriticalValue(n, options_.window_size, options_.alpha);
}

bool ChangeDetector::Observe(int64_t value) {
  current_.push_back(value);
  if (current_.size() > options_.window_size) {
    current_.pop_front();
  }
  ++since_last_alarm_;
  if (reference_.empty() || current_.size() < options_.window_size ||
      since_last_alarm_ < options_.cooldown) {
    return false;
  }
  // Two-pointer KS against the (already sorted) reference.
  std::vector<int64_t> cur(current_.begin(), current_.end());
  std::sort(cur.begin(), cur.end());
  double na = static_cast<double>(reference_.size());
  double nb = static_cast<double>(cur.size());
  size_t i = 0;
  size_t j = 0;
  double max_gap = 0.0;
  while (i < reference_.size() && j < cur.size()) {
    int64_t v = std::min(reference_[i], cur[j]);
    while (i < reference_.size() && reference_[i] == v) {
      ++i;
    }
    while (j < cur.size() && cur[j] == v) {
      ++j;
    }
    double fa = static_cast<double>(i) / na;
    double fb = static_cast<double>(j) / nb;
    max_gap = std::max(max_gap, std::fabs(fa - fb));
  }
  last_distance_ = max_gap;
  if (max_gap > threshold()) {
    ++num_alarms_;
    since_last_alarm_ = 0;
    return true;
  }
  return false;
}

std::vector<int64_t> ChangeDetector::CurrentWindow() const {
  return std::vector<int64_t>(current_.begin(), current_.end());
}

}  // namespace dcv
