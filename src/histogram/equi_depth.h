#ifndef DCV_HISTOGRAM_EQUI_DEPTH_H_
#define DCV_HISTOGRAM_EQUI_DEPTH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "histogram/distribution.h"

namespace dcv {

/// An equi-depth (equi-height) histogram: bucket boundaries are placed at
/// sample quantiles so that every bucket holds (approximately) the same
/// number of observations. This is the model the paper's experiments use
/// (100 buckets over one training week of data, §6.4); it spends resolution
/// where the data actually lives, which matters for the heavy-tailed traffic
/// distributions the FPTAS exploits.
///
/// F(v) is linearly interpolated within a bucket.
class EquiDepthHistogram : public DistributionModel {
 public:
  /// Builds from a batch of observations (clamped into [0, domain_max]).
  /// Fails if num_buckets < 1, domain_max < 0, or observations is empty.
  static Result<EquiDepthHistogram> Build(std::vector<int64_t> observations,
                                          int64_t domain_max, int num_buckets);

  /// Builds from precomputed bucket upper boundaries: bucket i covers
  /// (upper[i-1], upper[i]] and holds counts[i] observations. Used by the
  /// GK-sketch conversion. Boundaries must be non-decreasing and within
  /// [0, domain_max].
  static Result<EquiDepthHistogram> FromBoundaries(
      std::vector<int64_t> upper_bounds, std::vector<double> counts,
      int64_t domain_max);

  int num_buckets() const { return static_cast<int>(counts_.size()); }

  /// Upper (inclusive) boundary of bucket i.
  int64_t bucket_upper(int i) const { return upper_[static_cast<size_t>(i)]; }

  int64_t domain_max() const override { return domain_max_; }
  double total_weight() const override { return total_; }
  double CumulativeAt(int64_t v) const override;

 private:
  EquiDepthHistogram(std::vector<int64_t> upper, std::vector<double> counts,
                     std::vector<double> cum, int64_t domain_max,
                     double total);

  // upper_[i] is the largest value in bucket i; bucket i covers
  // (upper_[i-1], upper_[i]] with upper_[-1] defined as min_value_ - 1.
  std::vector<int64_t> upper_;
  std::vector<double> counts_;
  std::vector<double> cum_;  // cum_[i] = counts_[0] + ... + counts_[i].
  int64_t min_value_ = 0;    // Smallest observed value; F(v) = 0 below it.
  int64_t domain_max_;
  double total_;
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_EQUI_DEPTH_H_
