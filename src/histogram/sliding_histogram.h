#ifndef DCV_HISTOGRAM_SLIDING_HISTOGRAM_H_
#define DCV_HISTOGRAM_SLIDING_HISTOGRAM_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "common/result.h"
#include "histogram/equi_depth.h"
#include "histogram/gk_sketch.h"

namespace dcv {

/// Approximate quantiles / histograms over a *sliding window* of the last W
/// observations, in sublinear space — the capability the paper relies on
/// for "a recent window of values using the techniques of [Datar et al.,
/// Lee & Ting]" (§3.2).
///
/// Implementation: the stream is cut into blocks of size W/k; each block is
/// summarized by a Greenwald-Khanna sketch with error eps/2, and the last
/// k+1 blocks are retained. A query merges the retained block summaries
/// (error eps/2) and treats the oldest, partially-expired block as fully
/// in-window (error at most one block, i.e. 1/k of the window). Total rank
/// error is at most (eps/2 + 1/k) * W; with the default k = ceil(4/eps)
/// that is <= eps * W. Space: O(k * (1/eps) log(eps W/k)) tuples.
class SlidingWindowHistogram {
 public:
  /// window >= 2 observations; eps in (0, 1).
  static Result<SlidingWindowHistogram> Create(int64_t window, double eps);

  SlidingWindowHistogram(SlidingWindowHistogram&&) noexcept = default;
  SlidingWindowHistogram& operator=(SlidingWindowHistogram&&) noexcept =
      default;
  SlidingWindowHistogram(const SlidingWindowHistogram&) = delete;
  SlidingWindowHistogram& operator=(const SlidingWindowHistogram&) = delete;

  /// Inserts one observation (advances the window by one position).
  void Insert(int64_t value);

  /// Observations inserted so far (lifetime, not window).
  int64_t count() const { return count_; }

  /// Number of observations the current summary covers (min(count, ~W)).
  int64_t covered() const;

  /// A value whose rank within the last ~W observations is within eps*W of
  /// ceil(phi * W). Fails when the window is empty.
  Result<int64_t> Quantile(double phi) const;

  /// Equi-depth histogram of the current window contents (boundaries at
  /// quantiles i/buckets). Fails when the window is empty.
  Result<EquiDepthHistogram> ToEquiDepthHistogram(int num_buckets,
                                                  int64_t domain_max) const;

  /// Total sketch tuples retained (space usage).
  size_t num_tuples() const;

 private:
  SlidingWindowHistogram(int64_t window, double eps, int64_t block_size,
                         size_t max_blocks);

  struct Block {
    std::unique_ptr<GkSketch> sketch;
    int64_t size = 0;
  };

  int64_t window_;
  double eps_;
  int64_t block_size_;
  size_t max_blocks_;
  int64_t count_ = 0;
  std::deque<Block> blocks_;  // Oldest at front; back is the open block.
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_SLIDING_HISTOGRAM_H_
