#include "histogram/equi_width.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace dcv {

Result<EquiWidthHistogram> EquiWidthHistogram::Create(int64_t domain_max,
                                                      int num_buckets) {
  if (num_buckets < 1) {
    return InvalidArgumentError("equi-width histogram needs >= 1 bucket");
  }
  if (domain_max < 0) {
    return InvalidArgumentError("domain_max must be non-negative");
  }
  // More buckets than distinct values is harmless but wasteful; clamp.
  int64_t distinct = domain_max + 1;
  if (static_cast<int64_t>(num_buckets) > distinct) {
    num_buckets = static_cast<int>(distinct);
  }
  return EquiWidthHistogram(domain_max, num_buckets);
}

EquiWidthHistogram::EquiWidthHistogram(int64_t domain_max, int num_buckets)
    : domain_max_(domain_max), counts_(static_cast<size_t>(num_buckets), 0.0) {}

int EquiWidthHistogram::BucketFor(int64_t value) const {
  int64_t b = static_cast<int64_t>(counts_.size()) * value / (domain_max_ + 1);
  return static_cast<int>(Clamp<int64_t>(
      b, 0, static_cast<int64_t>(counts_.size()) - 1));
}

int64_t EquiWidthHistogram::BucketLo(int b) const {
  return CeilDiv(static_cast<int64_t>(b) * (domain_max_ + 1),
                 static_cast<int64_t>(counts_.size()));
}

int64_t EquiWidthHistogram::BucketHi(int b) const {
  if (b + 1 == static_cast<int>(counts_.size())) {
    return domain_max_;
  }
  return BucketLo(b + 1) - 1;
}

void EquiWidthHistogram::Add(int64_t value) { AddWeighted(value, 1.0); }

void EquiWidthHistogram::AddWeighted(int64_t value, double weight) {
  DCV_CHECK(weight >= 0) << "negative observation weight";
  value = Clamp<int64_t>(value, 0, domain_max_);
  counts_[static_cast<size_t>(BucketFor(value))] += weight;
  total_ += weight;
}

Status EquiWidthHistogram::Merge(const EquiWidthHistogram& other) {
  if (other.domain_max_ != domain_max_ ||
      other.counts_.size() != counts_.size()) {
    return InvalidArgumentError("cannot merge equi-width histograms of "
                                "different shapes");
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return OkStatus();
}

double EquiWidthHistogram::CumulativeAt(int64_t v) const {
  if (v < 0) {
    return 0.0;
  }
  if (v >= domain_max_) {
    return total_;
  }
  int b = BucketFor(v);
  double cum = 0.0;
  for (int i = 0; i < b; ++i) {
    cum += counts_[static_cast<size_t>(i)];
  }
  int64_t lo = BucketLo(b);
  int64_t hi = BucketHi(b);
  // Uniform-within-bucket: fraction of the bucket's integer values <= v.
  double span = static_cast<double>(hi - lo + 1);
  double covered = static_cast<double>(v - lo + 1);
  return cum + counts_[static_cast<size_t>(b)] * (covered / span);
}

}  // namespace dcv
