#ifndef DCV_HISTOGRAM_EXP_HISTOGRAM_H_
#define DCV_HISTOGRAM_EXP_HISTOGRAM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/result.h"

namespace dcv {

/// Exponential histogram (Datar, Gionis, Indyk, Motwani, SODA'02) counting
/// the number of 1s in the last `window` ticks of a bit stream, with relative
/// error at most 1/k using O(k log window) buckets. The paper cites this
/// ([8], §3.2) as the mechanism for maintaining recent-window statistics at
/// each site.
class ExpHistogram {
 public:
  /// window >= 1 ticks; k >= 1 controls accuracy (error <= 1/k).
  ExpHistogram(int64_t window, int k);

  /// Advances to time `timestamp` (monotone non-decreasing) and records a
  /// bit. Zero bits only advance time.
  void Add(int64_t timestamp, bool bit);

  /// Approximate number of 1s in (timestamp - window, timestamp], where
  /// `timestamp` is the latest time passed to Add.
  int64_t Estimate() const;

  /// Exact lower/upper bounds implied by the bucket structure.
  int64_t LowerBound() const;
  int64_t UpperBound() const;

  size_t num_buckets() const { return buckets_.size(); }
  int64_t window() const { return window_; }

 private:
  struct Bucket {
    int64_t timestamp;  // Time of the most recent 1 in this bucket.
    int64_t size;       // Number of 1s (a power of two).
  };

  void Expire();
  void Merge();

  int64_t window_;
  int k_;
  int64_t now_ = 0;
  std::deque<Bucket> buckets_;  // Newest at front.
};

/// Approximate sum of integer values in [0, 2^bits) over a sliding window,
/// built from one ExpHistogram per bit position (the standard DGIM
/// extension). Used for windowed traffic-volume statistics at a site.
class SlidingWindowSum {
 public:
  /// window >= 1; bits in [1, 62]; k controls per-bit accuracy.
  SlidingWindowSum(int64_t window, int bits, int k);

  /// Adds a value at the given (monotone non-decreasing) timestamp. Values
  /// are clamped into [0, 2^bits - 1].
  void Add(int64_t timestamp, int64_t value);

  /// Approximate sum over the last `window` ticks.
  int64_t Estimate() const;

 private:
  int bits_;
  std::vector<ExpHistogram> per_bit_;
};

}  // namespace dcv

#endif  // DCV_HISTOGRAM_EXP_HISTOGRAM_H_
