#include "histogram/distribution.h"

namespace dcv {

int64_t DistributionModel::MinValueWithCumAtLeast(double target) const {
  int64_t max = domain_max();
  if (CumulativeAt(max) < target) {
    return max + 1;
  }
  int64_t lo = 0;
  int64_t hi = max;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (CumulativeAt(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace dcv
