#include "histogram/exp_histogram.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace dcv {

ExpHistogram::ExpHistogram(int64_t window, int k) : window_(window), k_(k) {
  DCV_CHECK(window >= 1) << "window must be >= 1";
  DCV_CHECK(k >= 1) << "k must be >= 1";
}

void ExpHistogram::Add(int64_t timestamp, bool bit) {
  DCV_CHECK(timestamp >= now_) << "timestamps must be non-decreasing";
  now_ = timestamp;
  Expire();
  if (!bit) {
    return;
  }
  buckets_.push_front(Bucket{timestamp, 1});
  Merge();
}

void ExpHistogram::Expire() {
  while (!buckets_.empty() && buckets_.back().timestamp <= now_ - window_) {
    buckets_.pop_back();
  }
}

void ExpHistogram::Merge() {
  // Invariant: for each size class, at most k_ + 1 buckets; merging the two
  // oldest of a class creates one of the next class.
  // Buckets are ordered newest-first and sizes are non-decreasing back-to-
  // front, so a linear scan with a size counter suffices.
  bool changed = true;
  while (changed) {
    changed = false;
    int64_t current_size = 0;
    int count = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].size != current_size) {
        current_size = buckets_[i].size;
        count = 1;
      } else {
        ++count;
      }
      if (count == k_ + 2) {
        // Merge buckets i and i-1 (the two oldest of this class are at the
        // highest indices among the class; i is the oldest seen so far).
        buckets_[i].size *= 2;
        buckets_[i].timestamp =
            std::max(buckets_[i].timestamp, buckets_[i - 1].timestamp);
        buckets_.erase(buckets_.begin() + static_cast<int64_t>(i) - 1);
        changed = true;
        break;
      }
    }
  }
}

int64_t ExpHistogram::LowerBound() const {
  if (buckets_.empty()) {
    return 0;
  }
  int64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.size;
  }
  // The oldest bucket may straddle the window boundary; only its most recent
  // 1 is certainly inside.
  return total - buckets_.back().size + 1;
}

int64_t ExpHistogram::UpperBound() const {
  int64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.size;
  }
  return total;
}

int64_t ExpHistogram::Estimate() const {
  if (buckets_.empty()) {
    return 0;
  }
  int64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.size;
  }
  // Standard DGIM estimate: count all but half of the oldest bucket.
  return total - buckets_.back().size / 2;
}

SlidingWindowSum::SlidingWindowSum(int64_t window, int bits, int k)
    : bits_(bits) {
  DCV_CHECK(bits >= 1 && bits <= 62) << "bits must be in [1, 62]";
  per_bit_.reserve(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    per_bit_.emplace_back(window, k);
  }
}

void SlidingWindowSum::Add(int64_t timestamp, int64_t value) {
  int64_t max_value = (int64_t{1} << bits_) - 1;
  value = Clamp<int64_t>(value, 0, max_value);
  for (int b = 0; b < bits_; ++b) {
    per_bit_[static_cast<size_t>(b)].Add(timestamp, (value >> b) & 1);
  }
}

int64_t SlidingWindowSum::Estimate() const {
  int64_t sum = 0;
  for (int b = 0; b < bits_; ++b) {
    sum += per_bit_[static_cast<size_t>(b)].Estimate() << b;
  }
  return sum;
}

}  // namespace dcv
