#include "histogram/gk_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dcv {

GkSketch::GkSketch(double eps) : eps_(eps) {
  DCV_CHECK(eps > 0.0 && eps < 1.0) << "GK eps must be in (0,1)";
  compress_period_ = std::max<int64_t>(1, static_cast<int64_t>(1.0 / (2.0 * eps_)));
}

void GkSketch::Insert(int64_t value) {
  // Find insertion point: first tuple with tuple.value >= value.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, int64_t v) { return t.value < v; });
  int64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    delta = 0;  // New min or max is known exactly.
  } else {
    delta = static_cast<int64_t>(std::floor(2.0 * eps_ *
                                            static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;
  if (count_ % compress_period_ == 0) {
    Compress();
  }
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) {
    return;
  }
  const double budget = 2.0 * eps_ * static_cast<double>(count_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size());
  merged.push_back(tuples_.front());
  // Scan interior tuples; fold tuple i into its successor when the combined
  // uncertainty stays within the budget. The first and last tuples (min/max)
  // are always kept.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(cur.g + next.g + next.delta) <= budget) {
      // Fold cur into next (accumulate g in the stored next when reached).
      tuples_[i + 1].g += cur.g;
    } else {
      merged.push_back(cur);
    }
  }
  merged.push_back(tuples_.back());
  tuples_ = std::move(merged);
}

Result<int64_t> GkSketch::Quantile(double phi) const {
  if (tuples_.empty()) {
    return FailedPreconditionError("quantile of empty GK sketch");
  }
  phi = Clamp(phi, 0.0, 1.0);
  const double rank = std::max(1.0, std::ceil(phi * static_cast<double>(count_)));
  const double slack = eps_ * static_cast<double>(count_);
  // Canonical GK query: return the last tuple whose successor would
  // overshoot rank + slack in max-rank.
  int64_t r_min = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    r_min += tuples_[i].g;
    if (i + 1 == tuples_.size() ||
        static_cast<double>(r_min + tuples_[i + 1].g + tuples_[i + 1].delta) >
            rank + slack) {
      return tuples_[i].value;
    }
  }
  return tuples_.back().value;
}

int64_t GkSketch::ApproxRank(int64_t value) const {
  int64_t r_min = 0;
  int64_t last_delta = 0;
  for (const Tuple& t : tuples_) {
    if (t.value > value) {
      break;
    }
    r_min += t.g;
    last_delta = t.delta;
  }
  // The true rank lies in [r_min, r_min + last_delta]; report the midpoint.
  return r_min + last_delta / 2;
}

Result<EquiDepthHistogram> GkSketch::ToEquiDepthHistogram(
    int num_buckets, int64_t domain_max) const {
  if (count_ == 0) {
    return FailedPreconditionError("cannot build histogram from empty sketch");
  }
  if (num_buckets < 1) {
    return InvalidArgumentError("num_buckets must be >= 1");
  }
  std::vector<int64_t> upper;
  std::vector<double> counts;
  double per_bucket = static_cast<double>(count_) /
                      static_cast<double>(num_buckets);
  double pending = 0.0;
  for (int i = 1; i <= num_buckets; ++i) {
    DCV_ASSIGN_OR_RETURN(
        int64_t q, Quantile(static_cast<double>(i) /
                            static_cast<double>(num_buckets)));
    q = Clamp<int64_t>(q, 0, domain_max);
    pending += per_bucket;
    if (!upper.empty() && q <= upper.back()) {
      // Duplicate quantile: merge mass into the previous bucket.
      counts.back() += pending;
      pending = 0.0;
      continue;
    }
    upper.push_back(q);
    counts.push_back(pending);
    pending = 0.0;
  }
  if (pending > 0.0 && !counts.empty()) {
    counts.back() += pending;
  }
  return EquiDepthHistogram::FromBoundaries(std::move(upper), std::move(counts),
                                            domain_max);
}

}  // namespace dcv
