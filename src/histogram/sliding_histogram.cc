#include "histogram/sliding_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace dcv {

Result<SlidingWindowHistogram> SlidingWindowHistogram::Create(int64_t window,
                                                              double eps) {
  if (window < 2) {
    return InvalidArgumentError("sliding window must be >= 2");
  }
  if (eps <= 0.0 || eps >= 1.0) {
    return InvalidArgumentError("eps must be in (0, 1)");
  }
  int64_t k = static_cast<int64_t>(std::ceil(4.0 / eps));
  int64_t block_size = std::max<int64_t>(1, window / k);
  size_t max_blocks = static_cast<size_t>(CeilDiv(window, block_size)) + 1;
  return SlidingWindowHistogram(window, eps, block_size, max_blocks);
}

SlidingWindowHistogram::SlidingWindowHistogram(int64_t window, double eps,
                                               int64_t block_size,
                                               size_t max_blocks)
    : window_(window),
      eps_(eps),
      block_size_(block_size),
      max_blocks_(max_blocks) {}

void SlidingWindowHistogram::Insert(int64_t value) {
  if (blocks_.empty() || blocks_.back().size >= block_size_) {
    Block b;
    b.sketch = std::make_unique<GkSketch>(eps_ / 2.0);
    blocks_.push_back(std::move(b));
    if (blocks_.size() > max_blocks_) {
      blocks_.pop_front();
    }
  }
  blocks_.back().sketch->Insert(value);
  ++blocks_.back().size;
  ++count_;
}

int64_t SlidingWindowHistogram::covered() const {
  int64_t total = 0;
  for (const Block& b : blocks_) {
    total += b.size;
  }
  return total;
}

size_t SlidingWindowHistogram::num_tuples() const {
  size_t total = 0;
  for (const Block& b : blocks_) {
    total += b.sketch->num_tuples();
  }
  return total;
}

Result<int64_t> SlidingWindowHistogram::Quantile(double phi) const {
  if (blocks_.empty()) {
    return FailedPreconditionError("quantile of empty sliding window");
  }
  phi = Clamp(phi, 0.0, 1.0);
  const double target = phi * static_cast<double>(covered());

  // Summed approximate rank is monotone in the probed value, so binary
  // search over the value domain spanned by the blocks.
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (const Block& b : blocks_) {
    DCV_ASSIGN_OR_RETURN(int64_t bmin, b.sketch->Quantile(0.0));
    DCV_ASSIGN_OR_RETURN(int64_t bmax, b.sketch->Quantile(1.0));
    lo = std::min(lo, bmin);
    hi = std::max(hi, bmax);
  }
  auto rank_of = [&](int64_t v) {
    int64_t rank = 0;
    for (const Block& b : blocks_) {
      rank += b.sketch->ApproxRank(v);
    }
    return rank;
  };
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (static_cast<double>(rank_of(mid)) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Result<EquiDepthHistogram> SlidingWindowHistogram::ToEquiDepthHistogram(
    int num_buckets, int64_t domain_max) const {
  if (blocks_.empty()) {
    return FailedPreconditionError(
        "cannot build histogram from empty sliding window");
  }
  if (num_buckets < 1) {
    return InvalidArgumentError("num_buckets must be >= 1");
  }
  std::vector<int64_t> upper;
  std::vector<double> counts;
  double per_bucket = static_cast<double>(covered()) /
                      static_cast<double>(num_buckets);
  double pending = 0.0;
  for (int i = 1; i <= num_buckets; ++i) {
    DCV_ASSIGN_OR_RETURN(
        int64_t q, Quantile(static_cast<double>(i) /
                            static_cast<double>(num_buckets)));
    q = Clamp<int64_t>(q, 0, domain_max);
    pending += per_bucket;
    if (!upper.empty() && q <= upper.back()) {
      counts.back() += pending;
      pending = 0.0;
      continue;
    }
    upper.push_back(q);
    counts.push_back(pending);
    pending = 0.0;
  }
  if (pending > 0.0 && !counts.empty()) {
    counts.back() += pending;
  }
  return EquiDepthHistogram::FromBoundaries(std::move(upper),
                                            std::move(counts), domain_max);
}

}  // namespace dcv
