#include "histogram/equi_depth.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace dcv {

Result<EquiDepthHistogram> EquiDepthHistogram::Build(
    std::vector<int64_t> observations, int64_t domain_max, int num_buckets) {
  if (num_buckets < 1) {
    return InvalidArgumentError("equi-depth histogram needs >= 1 bucket");
  }
  if (domain_max < 0) {
    return InvalidArgumentError("domain_max must be non-negative");
  }
  if (observations.empty()) {
    return InvalidArgumentError("equi-depth histogram needs >= 1 observation");
  }
  for (auto& v : observations) {
    v = Clamp<int64_t>(v, 0, domain_max);
  }
  std::sort(observations.begin(), observations.end());
  const size_t n = observations.size();
  const size_t k = std::min<size_t>(static_cast<size_t>(num_buckets), n);

  // Candidate boundaries at the k quantile positions; duplicates collapse.
  std::vector<int64_t> upper;
  upper.reserve(k);
  for (size_t i = 1; i <= k; ++i) {
    size_t pos = (i * n) / k;  // 1..n
    int64_t boundary = observations[pos - 1];
    if (upper.empty() || boundary > upper.back()) {
      upper.push_back(boundary);
    }
  }
  // The last boundary must cover the max observation.
  if (upper.back() < observations.back()) {
    upper.push_back(observations.back());
  }

  // Exact counts per bucket from the sorted sample.
  std::vector<double> counts(upper.size(), 0.0);
  std::vector<double> cum(upper.size(), 0.0);
  size_t prev = 0;
  for (size_t i = 0; i < upper.size(); ++i) {
    auto it = std::upper_bound(observations.begin(), observations.end(),
                               upper[i]);
    size_t pos = static_cast<size_t>(it - observations.begin());
    counts[i] = static_cast<double>(pos - prev);
    cum[i] = static_cast<double>(pos);
    prev = pos;
  }

  EquiDepthHistogram h(std::move(upper), std::move(counts), std::move(cum),
                       domain_max, static_cast<double>(n));
  h.min_value_ = observations.front();
  return h;
}

Result<EquiDepthHistogram> EquiDepthHistogram::FromBoundaries(
    std::vector<int64_t> upper_bounds, std::vector<double> counts,
    int64_t domain_max) {
  if (upper_bounds.empty() || upper_bounds.size() != counts.size()) {
    return InvalidArgumentError(
        "FromBoundaries needs matching, nonempty boundary/count vectors");
  }
  double total = 0.0;
  std::vector<double> cum(counts.size(), 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0) {
      return InvalidArgumentError("negative bucket count");
    }
    if (i > 0 && upper_bounds[i] < upper_bounds[i - 1]) {
      return InvalidArgumentError("bucket boundaries must be non-decreasing");
    }
    if (upper_bounds[i] < 0 || upper_bounds[i] > domain_max) {
      return InvalidArgumentError("bucket boundary outside [0, domain_max]");
    }
    total += counts[i];
    cum[i] = total;
  }
  EquiDepthHistogram h(std::move(upper_bounds), std::move(counts),
                       std::move(cum), domain_max, total);
  h.min_value_ = h.upper_.front();  // Conservative: no mass below 1st bound.
  return h;
}

EquiDepthHistogram::EquiDepthHistogram(std::vector<int64_t> upper,
                                       std::vector<double> counts,
                                       std::vector<double> cum,
                                       int64_t domain_max, double total)
    : upper_(std::move(upper)),
      counts_(std::move(counts)),
      cum_(std::move(cum)),
      domain_max_(domain_max),
      total_(total) {}

double EquiDepthHistogram::CumulativeAt(int64_t v) const {
  if (v < min_value_) {
    return 0.0;
  }
  if (v >= upper_.back()) {
    return total_;
  }
  // First bucket whose upper bound is >= v.
  auto it = std::lower_bound(upper_.begin(), upper_.end(), v);
  size_t b = static_cast<size_t>(it - upper_.begin());
  int64_t lower = (b == 0) ? min_value_ - 1 : upper_[b - 1];
  double cum_before = (b == 0) ? 0.0 : cum_[b - 1];
  if (upper_[b] == lower) {
    // Degenerate point-mass bucket (can only happen with FromBoundaries).
    return cum_[b];
  }
  double frac = static_cast<double>(v - lower) /
                static_cast<double>(upper_[b] - lower);
  return cum_before + counts_[b] * frac;
}

}  // namespace dcv
