#ifndef DCV_SIM_RUNNER_H_
#define DCV_SIM_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/channel.h"
#include "sim/message.h"
#include "sim/scheme.h"
#include "trace/trace.h"

namespace dcv {

/// Configuration of one simulation run: the global SUM constraint, the
/// training data handed to the scheme, and the evaluation trace replayed
/// epoch by epoch.
struct SimOptions {
  std::vector<int64_t> weights;  ///< A_i; empty = all ones.
  int64_t global_threshold = 0;  ///< T of sum_i A_i X_i <= T.

  /// Optional ground-truth override for non-SUM global constraints
  /// (boolean constraints with MIN/MAX, &&, ||): given an epoch's values,
  /// return true when the global constraint is VIOLATED. When unset, the
  /// default sum_i A_i X_i > T is used. Schemes are configured separately;
  /// this only controls how the runner scores detections.
  std::function<bool(const std::vector<int64_t>&)> is_violation;

  /// Fault injection for the site<->coordinator channel. The default spec
  /// is the perfect network, under which every scheme's message counts and
  /// detections are bit-identical to the pre-channel protocol.
  FaultSpec faults;

  /// Optional per-epoch observer, called after each scheme OnEpoch with the
  /// epoch index and the scheme's result. The conformance harness uses it
  /// to capture the lockstep per-epoch detection trail that the threaded
  /// runtime must reproduce. Never changes protocol behavior.
  std::function<void(int64_t, const EpochResult&)> on_epoch;

  /// Optional observability sinks (both default null = observation off).
  /// When `metrics` is set the runner, channel, and scheme mirror their
  /// tallies into registry counters/histograms and each SimResult carries a
  /// per-segment MetricsSnapshot delta. When `recorder` is set, typed
  /// per-epoch trace events are captured for JSONL / Chrome-trace export.
  /// Attaching observers never changes protocol behavior: same messages,
  /// same detections, bit for bit.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;
};

/// Aggregate outcome of a run. `messages` is the paper's §6.2 metric
/// (alarms + polls + updates); the detection counters verify the covering
/// property end to end.
struct SimResult {
  std::string scheme_name;
  int64_t epochs = 0;
  MessageCounter messages;

  int64_t alarm_epochs = 0;   ///< Epochs with >= 1 local alarm.
  int64_t total_alarms = 0;   ///< Sum of per-epoch alarm counts.
  int64_t polled_epochs = 0;  ///< Epochs where the coordinator polled.

  int64_t true_violations = 0;      ///< Epochs with sum > T (ground truth).
  int64_t detected_violations = 0;  ///< True violations the scheme reported.
  int64_t missed_violations = 0;    ///< True violations it did not report.
  int64_t false_alarm_epochs = 0;   ///< Polled epochs without a violation.

  /// Channel-level reliability accounting for this run/segment:
  /// retransmissions, timed-out polls, degraded decisions, late-delivery
  /// latency (detection latency of delayed alarms, in epochs), and more.
  ChannelStats reliability;

  /// Per-segment delta of every registered metric (counters, gauges,
  /// histograms). Empty unless SimOptions::metrics was attached.
  obs::MetricsSnapshot metrics;

  /// messages.total() averaged per epoch.
  double MessagesPerEpoch() const {
    return epochs > 0 ? static_cast<double>(messages.total()) /
                            static_cast<double>(epochs)
                      : 0.0;
  }

  /// The unified telemetry export: one JSON object combining the per-type
  /// message counts, the detection tallies, ChannelStats::ToJson, and (when
  /// a registry was attached) MetricsSnapshot::ToJson under "metrics".
  std::string ToJson() const;
};

/// Replays `eval` through `scheme` and tallies messages and detection
/// accuracy against ground truth. `training` may be empty for schemes that
/// do not use it (it is still passed to Initialize).
Result<SimResult> RunSimulation(DetectionScheme* scheme,
                                const SimOptions& options,
                                const Trace& training, const Trace& eval);

/// Like RunSimulation, but initializes the scheme once and reports one
/// SimResult per consecutive segment of `segment_epochs` epochs (the last
/// segment may be shorter). Adaptive scheme state (Geometric thresholds,
/// change-detection windows, recomputed histograms) carries across segment
/// boundaries — this is how the paper evaluates week by week while
/// threshold recomputations persist into following weeks (§6.4).
Result<std::vector<SimResult>> RunSimulationSegments(
    DetectionScheme* scheme, const SimOptions& options, const Trace& training,
    const Trace& eval, int64_t segment_epochs);

}  // namespace dcv

#endif  // DCV_SIM_RUNNER_H_
