#include "sim/runner.h"

#include "obs/json_writer.h"

namespace dcv {
namespace {

/// Runner-level registry counters, cached once per run so the per-epoch
/// cost with metrics attached is a handful of relaxed atomic adds.
struct RunnerCounters {
  obs::Counter* epochs = nullptr;
  obs::Counter* alarms = nullptr;
  obs::Counter* alarm_epochs = nullptr;
  obs::Counter* polled_epochs = nullptr;
  obs::Counter* true_violations = nullptr;
  obs::Counter* detected_violations = nullptr;
  obs::Counter* missed_violations = nullptr;
  obs::Counter* false_alarm_epochs = nullptr;

  void Bind(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) {
      return;
    }
    epochs = metrics->counter("sim/epochs");
    alarms = metrics->counter("sim/alarms");
    alarm_epochs = metrics->counter("sim/alarm_epochs");
    polled_epochs = metrics->counter("sim/polled_epochs");
    true_violations = metrics->counter("sim/true_violations");
    detected_violations = metrics->counter("sim/detected_violations");
    missed_violations = metrics->counter("sim/missed_violations");
    false_alarm_epochs = metrics->counter("sim/false_alarm_epochs");
  }
};

Status ValidateAndFillWeights(const Trace& training, const Trace& eval,
                              const SimOptions& options,
                              std::vector<int64_t>* weights) {
  const int n = eval.num_sites();
  if (training.num_epochs() > 0 && training.num_sites() != n) {
    return InvalidArgumentError(
        "training and eval traces have different site counts");
  }
  *weights = options.weights;
  if (weights->empty()) {
    weights->assign(static_cast<size_t>(n), 1);
  }
  if (static_cast<int>(weights->size()) != n) {
    return InvalidArgumentError("weights size mismatch");
  }
  for (int64_t w : *weights) {
    if (w < 1) {
      return InvalidArgumentError("weights must be >= 1");
    }
  }
  return OkStatus();
}

}  // namespace

Result<std::vector<SimResult>> RunSimulationSegments(
    DetectionScheme* scheme, const SimOptions& options, const Trace& training,
    const Trace& eval, int64_t segment_epochs) {
  if (scheme == nullptr) {
    return InvalidArgumentError("scheme must not be null");
  }
  if (segment_epochs < 1) {
    return InvalidArgumentError("segment_epochs must be >= 1");
  }
  std::vector<int64_t> weights;
  DCV_RETURN_IF_ERROR(ValidateAndFillWeights(training, eval, options, &weights));
  const int n = eval.num_sites();

  // One shared counter and channel; per-segment deltas are computed at
  // segment boundaries.
  MessageCounter counter;
  Channel channel(options.faults);
  DCV_RETURN_IF_ERROR(channel.Init(n, &counter));
  channel.SetObserver(options.metrics, options.recorder);
  if (options.recorder != nullptr) {
    options.recorder->DeclareSites(n);
  }
  RunnerCounters oc;
  oc.Bind(options.metrics);
  SimContext ctx;
  ctx.num_sites = n;
  ctx.weights = weights;
  ctx.global_threshold = options.global_threshold;
  ctx.training = &training;
  ctx.counter = &counter;
  ctx.channel = &channel;
  ctx.metrics = options.metrics;
  ctx.recorder = options.recorder;
  DCV_RETURN_IF_ERROR(scheme->Initialize(ctx));

  std::vector<SimResult> segments;
  MessageCounter counted_so_far;
  ChannelStats stats_so_far;
  obs::MetricsSnapshot metrics_so_far;
  SimResult current;
  current.scheme_name = std::string(scheme->name());

  auto flush_segment = [&]() {
    // Attribute the counter growth since the last flush to this segment.
    for (int m = 0; m < kNumMessageTypes; ++m) {
      MessageType type = static_cast<MessageType>(m);
      current.messages.Count(type, counter.of(type) - counted_so_far.of(type));
      counted_so_far.Count(type,
                           counter.of(type) - counted_so_far.of(type));
    }
    current.reliability = channel.stats() - stats_so_far;
    stats_so_far = channel.stats();
    if (options.metrics != nullptr) {
      obs::MetricsSnapshot now = options.metrics->Snapshot();
      current.metrics = now.DiffSince(metrics_so_far);
      metrics_so_far = std::move(now);
    }
    segments.push_back(current);
    current = SimResult{};
    current.scheme_name = std::string(scheme->name());
  };

  for (int64_t t = 0; t < eval.num_epochs(); ++t) {
    const std::vector<int64_t>& values = eval.epoch(t);
    if (static_cast<int>(values.size()) != n) {
      return InvalidArgumentError(
          "eval epoch " + std::to_string(t) + " has " +
          std::to_string(values.size()) + " values; expected " +
          std::to_string(n));
    }
    channel.BeginEpoch(t);
    DCV_ASSIGN_OR_RETURN(EpochResult epoch, scheme->OnEpoch(values));
    if (options.on_epoch) {
      options.on_epoch(t, epoch);
    }

    ++current.epochs;
    DCV_OBS_COUNT(oc.epochs, 1);
    if (epoch.num_alarms > 0) {
      ++current.alarm_epochs;
      current.total_alarms += epoch.num_alarms;
      DCV_OBS_COUNT(oc.alarm_epochs, 1);
      DCV_OBS_COUNT(oc.alarms, epoch.num_alarms);
    }
    if (epoch.polled) {
      ++current.polled_epochs;
      DCV_OBS_COUNT(oc.polled_epochs, 1);
    }
    const bool violated =
        options.is_violation
            ? options.is_violation(values)
            : eval.WeightedSum(t, weights) > options.global_threshold;
    if (violated) {
      ++current.true_violations;
      DCV_OBS_COUNT(oc.true_violations, 1);
      DCV_OBS_EVENT(options.recorder, obs::TraceEventKind::kViolation, t,
                    obs::TraceRecorder::kCoordinator,
                    epoch.violation_reported ? 1 : 0);
      if (epoch.violation_reported) {
        ++current.detected_violations;
        DCV_OBS_COUNT(oc.detected_violations, 1);
      } else {
        ++current.missed_violations;
        DCV_OBS_COUNT(oc.missed_violations, 1);
      }
    } else if (epoch.polled) {
      ++current.false_alarm_epochs;
      DCV_OBS_COUNT(oc.false_alarm_epochs, 1);
    }

    if ((t + 1) % segment_epochs == 0) {
      flush_segment();
    }
  }
  if (current.epochs > 0) {
    flush_segment();
  }
  return segments;
}

Result<SimResult> RunSimulation(DetectionScheme* scheme,
                                const SimOptions& options,
                                const Trace& training, const Trace& eval) {
  if (eval.num_epochs() == 0) {
    // Degenerate run: still initialize and return an empty result.
    if (scheme == nullptr) {
      return InvalidArgumentError("scheme must not be null");
    }
    std::vector<int64_t> weights;
    DCV_RETURN_IF_ERROR(
        ValidateAndFillWeights(training, eval, options, &weights));
    MessageCounter counter;
    Channel channel(options.faults);
    DCV_RETURN_IF_ERROR(channel.Init(eval.num_sites(), &counter));
    SimContext ctx;
    ctx.num_sites = eval.num_sites();
    ctx.weights = weights;
    ctx.global_threshold = options.global_threshold;
    ctx.training = &training;
    ctx.counter = &counter;
    ctx.channel = &channel;
    ctx.metrics = options.metrics;
    ctx.recorder = options.recorder;
    DCV_RETURN_IF_ERROR(scheme->Initialize(ctx));
    SimResult empty;
    empty.scheme_name = std::string(scheme->name());
    return empty;
  }
  DCV_ASSIGN_OR_RETURN(
      auto segments,
      RunSimulationSegments(scheme, options, training, eval,
                            eval.num_epochs()));
  if (segments.size() != 1) {
    return InternalError("expected a single simulation segment");
  }
  return segments.front();
}

std::string SimResult::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("scheme").Value(scheme_name);
  w.Key("epochs").Value(epochs);
  w.Key("messages").BeginObject();
  for (int m = 0; m < kNumMessageTypes; ++m) {
    MessageType type = static_cast<MessageType>(m);
    w.Key(MessageTypeName(type)).Value(messages.of(type));
  }
  w.Key("total").Value(messages.total());
  w.EndObject();
  w.Key("messages_per_epoch").Value(MessagesPerEpoch());
  w.Key("detection").BeginObject();
  w.Key("alarm_epochs").Value(alarm_epochs);
  w.Key("total_alarms").Value(total_alarms);
  w.Key("polled_epochs").Value(polled_epochs);
  w.Key("true_violations").Value(true_violations);
  w.Key("detected_violations").Value(detected_violations);
  w.Key("missed_violations").Value(missed_violations);
  w.Key("false_alarm_epochs").Value(false_alarm_epochs);
  w.EndObject();
  w.Key("reliability").Raw(reliability.ToJson());
  w.Key("metrics").Raw(metrics.ToJson());
  w.EndObject();
  return w.str();
}

}  // namespace dcv
