#include "sim/local_scheme.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/math_util.h"
#include "histogram/equi_depth.h"
#include "histogram/equi_width.h"

namespace dcv {

LocalThresholdScheme::LocalThresholdScheme(Options options)
    : options_(options) {
  name_ = "local-threshold";
  if (options_.solver != nullptr) {
    name_ += "/" + std::string(options_.solver->name());
  }
}

Status LocalThresholdScheme::Initialize(const SimContext& ctx) {
  if (options_.solver == nullptr) {
    return InvalidArgumentError("LocalThresholdScheme requires a solver");
  }
  if (options_.budget_discount <= 0.0 || options_.budget_discount > 1.0) {
    return InvalidArgumentError("budget_discount must be in (0, 1]");
  }
  if (options_.tracking_precision <= 0.0) {
    return InvalidArgumentError("tracking_precision must be positive");
  }
  track_center_.assign(static_cast<size_t>(ctx.num_sites), -1);
  if (ctx.training == nullptr || ctx.training->num_epochs() == 0) {
    return InvalidArgumentError(
        "LocalThresholdScheme requires a nonempty training trace");
  }
  if (ctx.training->num_sites() != ctx.num_sites) {
    return InvalidArgumentError("training trace site count mismatch");
  }
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  ctx_ = ctx;
  DCV_ASSIGN_OR_RETURN(channel_, EnsureChannel(&ctx_, &owned_channel_));
  options_.solver->set_metrics(ctx_.metrics);

  models_.clear();
  detectors_.clear();
  history_.assign(static_cast<size_t>(ctx.num_sites), {});
  domain_max_.assign(static_cast<size_t>(ctx.num_sites), 0);
  for (int i = 0; i < ctx.num_sites; ++i) {
    std::vector<int64_t> series = ctx.training->SiteSeries(i);
    // Seed the rolling rebuild history with the training tail.
    size_t keep = std::min(series.size(), options_.rebuild_window);
    history_[static_cast<size_t>(i)].assign(series.end() - keep,
                                            series.end());
    int64_t observed_max = *std::max_element(series.begin(), series.end());
    int64_t m = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               options_.domain_headroom *
               static_cast<double>(std::max<int64_t>(observed_max, 1)))));
    domain_max_[static_cast<size_t>(i)] = m;
    DCV_ASSIGN_OR_RETURN(auto model, BuildModel(series, m));
    models_.push_back(std::move(model));
    if (options_.change_detection) {
      auto detector = std::make_unique<ChangeDetector>(options_.change_options);
      detector->Reset(series);
      detectors_.push_back(std::move(detector));
    }
  }
  DCV_RETURN_IF_ERROR(RecomputeThresholds());
  // Initial thresholds are installed out of band (part of deployment), so
  // every site starts in sync with the coordinator.
  site_thresholds_ = thresholds_;
  return OkStatus();
}

void LocalThresholdScheme::PushThresholds(const std::vector<int>& sites) {
  for (int i : sites) {
    SendStatus s = channel_->SendToSite(i, MessageType::kThresholdUpdate,
                                        /*reliable=*/true);
    if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
      site_thresholds_[static_cast<size_t>(i)] =
          thresholds_[static_cast<size_t>(i)];
      DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kThresholdUpdate,
                    channel_->epoch(), i, thresholds_[static_cast<size_t>(i)]);
    }
  }
}

Result<std::unique_ptr<DistributionModel>> LocalThresholdScheme::BuildModel(
    const std::vector<int64_t>& data, int64_t domain_max) const {
  if (options_.histogram_kind == HistogramKind::kEquiWidth) {
    DCV_ASSIGN_OR_RETURN(
        EquiWidthHistogram h,
        EquiWidthHistogram::Create(domain_max, options_.histogram_buckets));
    for (int64_t v : data) {
      h.Add(v);
    }
    return std::unique_ptr<DistributionModel>(
        std::make_unique<EquiWidthHistogram>(std::move(h)));
  }
  DCV_ASSIGN_OR_RETURN(
      EquiDepthHistogram h,
      EquiDepthHistogram::Build(data, domain_max, options_.histogram_buckets));
  return std::unique_ptr<DistributionModel>(
      std::make_unique<EquiDepthHistogram>(std::move(h)));
}

Status LocalThresholdScheme::RecomputeThresholds() {
  obs::ScopedTimer timer(ctx_.metrics != nullptr
                             ? ctx_.metrics->histogram("scheme/recompute_us")
                             : nullptr);
  ThresholdProblem problem;
  problem.budget = static_cast<int64_t>(
      options_.budget_discount *
      static_cast<double>(ctx_.global_threshold));
  for (int i = 0; i < ctx_.num_sites; ++i) {
    problem.vars.push_back(ProblemVar{
        i, ctx_.weights[static_cast<size_t>(i)],
        CdfView(models_[static_cast<size_t>(i)].get(), /*mirrored=*/false)});
  }
  DCV_ASSIGN_OR_RETURN(ThresholdSolution solution,
                       options_.solver->Solve(problem));
  thresholds_ = std::move(solution.thresholds);
  DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kThresholdRecompute,
                channel_ != nullptr ? channel_->epoch() : 0,
                obs::TraceRecorder::kCoordinator,
                static_cast<int64_t>(thresholds_.size()), timer.ElapsedUs());
  return OkStatus();
}

Result<EpochResult> LocalThresholdScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  Channel& ch = *channel_;

  // Sites that just recovered from a crash may have missed threshold
  // pushes: re-sync them to the coordinator's current thresholds.
  if (!ch.newly_recovered().empty()) {
    PushThresholds(ch.newly_recovered());
    ch.CountResync(static_cast<int64_t>(ch.newly_recovered().size()));
  }

  const bool tracking = options_.global_check == GlobalCheck::kTrack;
  const int64_t filter_width = std::max<int64_t>(
      1, static_cast<int64_t>(options_.tracking_precision *
                              static_cast<double>(ctx_.global_threshold) /
                              static_cast<double>(std::max(1, ctx_.num_sites))));

  // Alarms delayed in the network arriving now still trigger a poll.
  // Late tracking/change reports are consumed but ignored: filter centers
  // and histogram rebuilds only move on timely, acknowledged delivery.
  std::vector<Channel::Arrival> stale_alarms =
      ch.TakeArrivals(MessageType::kAlarm);
  ch.TakeArrivals(MessageType::kFilterReport);

  // Site-local checks. Sites enforce site_thresholds_ — the thresholds
  // they actually received — which may lag the coordinator's under faults.
  bool change_detected = false;
  int change_site = -1;
  std::vector<char> delivered_alarm(static_cast<size_t>(ctx_.num_sites), 0);
  int delivered_alarms = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    const bool site_up = ch.SiteUp(i);
    if (!site_up) {
      continue;  // A crashed site observes nothing and sends nothing.
    }
    if (!tracking) {
      if (values[si] > site_thresholds_[si]) {
        ++result.num_alarms;
        DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kLocalAlarm,
                      ch.epoch(), i, values[si]);
        SendStatus s = ch.SendFromSite(i, MessageType::kAlarm,
                                       /*reliable=*/true, values[si]);
        if (s == SendStatus::kDelivered) {
          delivered_alarm[si] = 1;
          ++delivered_alarms;
          if (options_.piggyback_values) {
            ch.RecordLastKnown(i, values[si]);
          }
        }
      }
    } else {
      const bool above = values[si] > site_thresholds_[si];
      const int64_t w = filter_width / std::max<int64_t>(1, ctx_.weights[si]);
      if (above && track_center_[si] < 0) {
        // Entering the alarmed region: one alarm (carrying the value) and
        // a filter installation ack. The filter is only considered
        // installed when the alarm actually reached the coordinator.
        ++result.num_alarms;
        DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kLocalAlarm,
                      ch.epoch(), i, values[si]);
        SendStatus s = ch.SendFromSite(i, MessageType::kAlarm,
                                       /*reliable=*/true, values[si]);
        if (s == SendStatus::kDelivered) {
          ch.SendToSite(i, MessageType::kFilterUpdate, /*reliable=*/true);
          track_center_[si] = values[si];
          DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kFilterUpdate,
                        ch.epoch(), i, values[si]);
        }
      } else if (above) {
        if (std::llabs(values[si] - track_center_[si]) > w) {
          // Filter breach while tracked: report + recenter ack.
          DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kFilterReport,
                        ch.epoch(), i, values[si]);
          SendStatus s = ch.SendFromSite(i, MessageType::kFilterReport,
                                         /*reliable=*/true, values[si]);
          if (s == SendStatus::kDelivered) {
            ch.SendToSite(i, MessageType::kFilterUpdate, /*reliable=*/true);
            track_center_[si] = values[si];
            DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kFilterUpdate,
                          ch.epoch(), i, values[si]);
          }
        }
      } else if (track_center_[si] >= 0) {
        // Back below the threshold: all-clear, filter dismantled (the
        // coordinator keeps tracking until the all-clear arrives).
        DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kFilterReport,
                      ch.epoch(), i, values[si]);
        SendStatus s = ch.SendFromSite(i, MessageType::kFilterReport,
                                       /*reliable=*/true, values[si]);
        if (s == SendStatus::kDelivered) {
          track_center_[si] = -1;
        }
      }
    }
    if (options_.change_detection) {
      history_[si].push_back(values[si]);
      if (history_[si].size() > options_.rebuild_window) {
        history_[si].pop_front();
      }
      if (detectors_[si]->Observe(values[si]) && !change_detected) {
        change_detected = true;
        change_site = i;
      }
    }
  }

  // Coordinator, tracking mode: certified upper bound from thresholds of
  // quiet sites and filter intervals of tracked ones — no polls at all.
  if (tracking) {
    bool any_tracked = false;
    int64_t bound = 0;
    for (int i = 0; i < ctx_.num_sites; ++i) {
      size_t si = static_cast<size_t>(i);
      const int64_t w = filter_width / std::max<int64_t>(1, ctx_.weights[si]);
      if (track_center_[si] >= 0) {
        any_tracked = true;
        bound += ctx_.weights[si] * (track_center_[si] + w);
      } else {
        bound += ctx_.weights[si] * std::max<int64_t>(0, thresholds_[si]);
      }
    }
    result.violation_reported =
        any_tracked && bound > ctx_.global_threshold;
  }

  // Coordinator: any alarm that made it through — fresh or delayed —
  // triggers global checking.
  if (!tracking && (delivered_alarms > 0 || !stale_alarms.empty())) {
    bool need_poll = true;
    if (options_.piggyback_values && stale_alarms.empty()) {
      // Delivered alarms carried their sites' values; quiet sites are
      // known to be at most at their thresholds, so a certified upper
      // bound on the weighted sum is available without extra messages.
      // (Stale alarms carry stale values, so they always force a poll.)
      int64_t bound = 0;
      for (int i = 0; i < ctx_.num_sites; ++i) {
        size_t si = static_cast<size_t>(i);
        bound += ctx_.weights[si] *
                 (delivered_alarm[si] ? values[si] : thresholds_[si]);
      }
      if (bound <= ctx_.global_threshold) {
        need_poll = false;  // Certified: no violation is possible.
      }
    }
    if (need_poll) {
      // Poll with a per-epoch deadline; unreachable sites degrade to their
      // last-known value or (assume-breach) their domain maximum.
      PollOutcome poll = ch.PollSites(values, ctx_.weights, domain_max_);
      result.polled = true;
      result.violation_reported = poll.weighted_sum > ctx_.global_threshold;
    }
  }

  // Change-triggered histogram rebuild + threshold recomputation (§3.2).
  // The rebuild uses the rolling history, which is longer (hence less
  // biased) than the detector's comparison window. The site's report
  // carries the window; if every retransmission of it is lost, the
  // recomputation is skipped until the detector fires again.
  if (change_detected) {
    size_t si = static_cast<size_t>(change_site);
    std::vector<int64_t> window(history_[si].begin(), history_[si].end());
    if (!window.empty()) {
      // The site resets its detector locally either way.
      detectors_[si]->Reset(window);
      SendStatus s = ch.SendFromSite(change_site, MessageType::kFilterReport,
                                     /*reliable=*/true);
      if (s == SendStatus::kDelivered) {
        int64_t observed_max =
            *std::max_element(window.begin(), window.end());
        int64_t m = std::max(
            domain_max_[si],
            static_cast<int64_t>(std::llround(
                options_.domain_headroom *
                static_cast<double>(std::max<int64_t>(observed_max, 1)))));
        domain_max_[si] = m;
        DCV_ASSIGN_OR_RETURN(auto model, BuildModel(window, m));
        models_[si] = std::move(model);
        DCV_RETURN_IF_ERROR(RecomputeThresholds());
        ++num_recomputes_;
        // New thresholds to every site.
        std::vector<int> all_sites(static_cast<size_t>(ctx_.num_sites));
        for (int i = 0; i < ctx_.num_sites; ++i) {
          all_sites[static_cast<size_t>(i)] = i;
        }
        PushThresholds(all_sites);
      }
    }
  }
  return result;
}

}  // namespace dcv
