#include "sim/multilevel_scheme.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "histogram/equi_depth.h"

namespace dcv {

Status MultiLevelScheme::Initialize(const SimContext& ctx) {
  if (options_.solver == nullptr) {
    return InvalidArgumentError("MultiLevelScheme requires a solver");
  }
  if (options_.num_levels < 2) {
    return InvalidArgumentError("MultiLevelScheme needs >= 2 levels");
  }
  if (ctx.training == nullptr || ctx.training->num_epochs() == 0) {
    return InvalidArgumentError(
        "MultiLevelScheme requires a nonempty training trace");
  }
  if (ctx.training->num_sites() != ctx.num_sites ||
      static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("site count / weights mismatch");
  }
  ctx_ = ctx;
  DCV_ASSIGN_OR_RETURN(channel_, EnsureChannel(&ctx_, &owned_channel_));
  options_.solver->set_metrics(ctx_.metrics);

  // Build training models and solve for the certified top rungs T_i.
  std::vector<EquiDepthHistogram> models;
  std::vector<int64_t> domain_max(static_cast<size_t>(ctx.num_sites));
  for (int i = 0; i < ctx.num_sites; ++i) {
    std::vector<int64_t> series = ctx.training->SiteSeries(i);
    int64_t observed_max = *std::max_element(series.begin(), series.end());
    domain_max[static_cast<size_t>(i)] = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               options_.domain_headroom *
               static_cast<double>(std::max<int64_t>(observed_max, 1)))));
    DCV_ASSIGN_OR_RETURN(
        EquiDepthHistogram model,
        EquiDepthHistogram::Build(series, domain_max[static_cast<size_t>(i)],
                                  options_.histogram_buckets));
    models.push_back(std::move(model));
  }
  ThresholdProblem problem;
  problem.budget = ctx.global_threshold;
  for (int i = 0; i < ctx.num_sites; ++i) {
    problem.vars.push_back(ProblemVar{
        i, ctx.weights[static_cast<size_t>(i)],
        CdfView(&models[static_cast<size_t>(i)], /*mirrored=*/false)});
  }
  DCV_ASSIGN_OR_RETURN(ThresholdSolution solution,
                       options_.solver->Solve(problem));

  // Band edges per site. Rung placement matters: rungs in the body of the
  // distribution are crossed constantly (diurnal swings + noise) and only
  // generate traffic, so we place
  //   * one low rung at the 25th percentile (it certifies slack cheaply
  //     when the site is quiet, which is what lets the coordinator skip
  //     polls while some other site runs hot),
  //   * the solver's certified rung T_i,
  //   * the remaining rungs in the upper tail, halving the tail
  //     probability each time (crossed rarely, but they cap the
  //     coordinator's bound when a site exceeds T_i only modestly),
  //   * the domain max.
  edges_.assign(static_cast<size_t>(ctx.num_sites), {});
  for (int i = 0; i < ctx.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    const double total = models[si].total_weight();
    std::vector<int64_t> raw;
    raw.push_back(solution.thresholds[si]);
    if (options_.num_levels >= 3) {
      raw.push_back(models[si].MinValueWithCumAtLeast(0.25 * total));
    }
    double tail =
        1.0 - models[si].CumulativeAt(solution.thresholds[si]) / total;
    tail = Clamp(tail, 1e-6, 1.0);
    for (int j = 0; j < options_.num_levels - 4; ++j) {
      tail /= 2.0;
      raw.push_back(models[si].MinValueWithCumAtLeast((1.0 - tail) * total));
    }
    if (options_.num_levels >= 4) {
      // A rung at the largest trained value keeps the band above the
      // solver rung from extending all the way to the (headroomed) domain
      // max, which would make any above-threshold value look worst-case.
      raw.push_back(models[si].MinValueWithCumAtLeast(total));
    }
    raw.push_back(domain_max[si]);
    std::sort(raw.begin(), raw.end());
    std::vector<int64_t>& edges = edges_[si];
    for (int64_t e : raw) {
      if (edges.empty() || e > edges.back()) {
        edges.push_back(e);
      }
    }
  }

  band_.clear();
  reported_band_.assign(static_cast<size_t>(ctx.num_sites), -1);
  pessimistic_.clear();
  for (int i = 0; i < ctx.num_sites; ++i) {
    // Unknown sites sit in the virtual overflow band until they report.
    band_.push_back(static_cast<int>(edges_[static_cast<size_t>(i)].size()));
    pessimistic_.push_back(edges_[static_cast<size_t>(i)].back());
  }
  return OkStatus();
}

int MultiLevelScheme::BandOf(int site, int64_t value) const {
  const std::vector<int64_t>& edges = edges_[static_cast<size_t>(site)];
  auto it = std::lower_bound(edges.begin(), edges.end(), value);
  // Values above the last edge land in a virtual overflow band.
  return static_cast<int>(it - edges.begin());
}

Result<EpochResult> MultiLevelScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  Channel& ch = *channel_;

  // A recovered site lost its band state and must re-introduce itself;
  // until its report lands the coordinator pessimistically places it in
  // the overflow band (forcing polls rather than missing violations).
  for (int site : ch.newly_recovered()) {
    size_t si = static_cast<size_t>(site);
    reported_band_[si] = -1;
    band_[si] = static_cast<int>(edges_[si].size());
    ch.CountResync();
  }

  // Band reports delayed in the network land now: late bands still refine
  // the coordinator's bound.
  for (const Channel::Arrival& a :
       ch.TakeArrivals(MessageType::kFilterReport)) {
    band_[static_cast<size_t>(a.site)] = static_cast<int>(a.payload);
  }

  // Sites report band changes only (one message each). The site compares
  // against the band it last put on the wire, the coordinator against the
  // band it actually received — the two views diverge under faults and
  // reconverge on the next successful report.
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    if (!ch.SiteUp(i)) {
      continue;  // A crashed site observes and reports nothing.
    }
    int b = BandOf(i, values[si]);
    if (b != reported_band_[si]) {
      // The introduction report (reported_band_ == -1) is bootstrap
      // traffic, not an alarm.
      if (reported_band_[si] != -1) {
        ++result.num_alarms;
        DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kLocalAlarm,
                      ch.epoch(), i, values[si]);
      }
      DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kBandChange,
                    ch.epoch(), i, b);
      SendStatus s = ch.SendFromSite(i, MessageType::kFilterReport,
                                     /*reliable=*/true, b);
      if (s == SendStatus::kDelivered) {
        reported_band_[si] = b;
        band_[si] = b;
      } else if (s == SendStatus::kDelayed) {
        reported_band_[si] = b;
      }
      // Lost outright: the site re-reports next epoch (its wire view
      // still shows the old band).
    }
  }

  // Coordinator: certified upper bound on the weighted sum from the bands.
  bool overflow_band = false;
  int64_t bound = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    const std::vector<int64_t>& edges = edges_[si];
    if (band_[si] >= static_cast<int>(edges.size())) {
      overflow_band = true;
      break;
    }
    bound += ctx_.weights[si] * edges[static_cast<size_t>(band_[si])];
  }

  if (overflow_band || bound > ctx_.global_threshold) {
    PollOutcome poll = ch.PollSites(values, ctx_.weights, pessimistic_);
    result.polled = true;
    result.violation_reported = poll.weighted_sum > ctx_.global_threshold;
  }
  return result;
}

}  // namespace dcv
