#ifndef DCV_SIM_ADAPTIVE_FILTER_SCHEME_H_
#define DCV_SIM_ADAPTIVE_FILTER_SCHEME_H_

#include <memory>
#include <vector>

#include "sim/scheme.h"

namespace dcv {

/// Continuous-tracking comparator in the style of Olston, Jiang & Widom's
/// adaptive filters (SIGMOD'03), the algorithm the paper cites ([20]) as the
/// brute-force way to track sum_i A_i X_i with bounded error:
///
///  * site i holds a filter interval of width w_i centered at the last
///    value it shipped; it stays silent while X_i remains inside;
///  * when X_i escapes, the site reports the new value (1 message) and the
///    coordinator re-centers the filter (1 message back);
///  * the coordinator's estimate of the weighted sum is therefore accurate
///    to within W/2 = sum_i A_i w_i / 2 at all times; whenever the estimate
///    plus W/2 crosses the global threshold it polls all sites for an exact
///    check, so no violation is ever missed.
///
/// Widths are allocated uniformly in weighted units: A_i w_i = W / n with
/// W = precision * T. Small precision = tight tracking = many filter
/// reports; large precision = frequent threshold-region polls. Either way
/// the scheme pays for *tracking* even when the system is far from
/// violation — the overhead the paper's local-constraint decomposition
/// avoids.
class AdaptiveFilterScheme : public DetectionScheme {
 public:
  struct Options {
    /// Total tracking error budget as a fraction of the global threshold.
    double precision = 0.05;

    /// Olston-style width adaptation: every `realloc_period` epochs the
    /// coordinator reallocates the width budget in proportion to each
    /// site's recent breach count (volatile sites get wide filters, stable
    /// ones tight filters), keeping the total weighted width — and hence
    /// the tracking error bound — unchanged. 0 keeps widths uniform.
    int64_t realloc_period = 0;
    /// Smoothing floor: every site keeps at least this fraction of its
    /// uniform share, so no filter collapses to zero width.
    double min_share = 0.2;
  };

  explicit AdaptiveFilterScheme(Options options) : options_(options) {}
  AdaptiveFilterScheme() : AdaptiveFilterScheme(Options()) {}

  std::string_view name() const override { return "adaptive-filters"; }

  Status Initialize(const SimContext& ctx) override;

  Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) override;

 private:
  void ReallocateWidths();

  Options options_;
  SimContext ctx_;
  Channel* channel_ = nullptr;
  std::unique_ptr<Channel> owned_channel_;
  /// Coordinator's view of each site's filter center; only moves when a
  /// report actually arrives.
  std::vector<int64_t> centers_;
  /// Whether the coordinator has ever received a center from site i. While
  /// any site is unknown the bound is unsound and the coordinator polls.
  std::vector<char> centers_known_;
  /// Each site's own view of its filter center (what it suppresses
  /// against); diverges from `centers_` when a report is delayed.
  std::vector<int64_t> site_center_;
  /// Whether site i believes its bootstrap report is out; reset on crash
  /// recovery so the site re-introduces itself.
  std::vector<char> site_sent_;
  std::vector<int64_t> half_widths_;  ///< In raw value units, per site.
  std::vector<int64_t> breach_counts_;  ///< Since the last reallocation.
  double total_weighted_width_ = 0.0;   ///< Invariant error budget W.
  int64_t epochs_since_realloc_ = 0;
};

}  // namespace dcv

#endif  // DCV_SIM_ADAPTIVE_FILTER_SCHEME_H_
