#ifndef DCV_SIM_MESSAGE_H_
#define DCV_SIM_MESSAGE_H_

#include <array>
#include <cstdint>
#include <string>

namespace dcv {

/// Message categories exchanged between remote sites and the coordinator.
/// The paper's metric (§6.2) is the total count of alarm and poll messages
/// caused by local threshold violations; the finer breakdown supports the
/// cost-model ablation.
enum class MessageType {
  kAlarm = 0,            ///< Site -> coordinator: local constraint violated.
  kPollRequest = 1,      ///< Coordinator -> site: report your value.
  kPollResponse = 2,     ///< Site -> coordinator: current value.
  kThresholdUpdate = 3,  ///< Coordinator -> site: new local threshold.
  kFilterReport = 4,     ///< Site -> coordinator: adaptive-filter breach.
  kFilterUpdate = 5,     ///< Coordinator -> site: new filter interval.
  kAck = 6,              ///< Receiver -> sender: reliable-delivery ack.
};

/// kNumMessageTypes is derived from the last enumerator so the two cannot
/// drift; MessageTypeName's switch has no default, so a compiler warning
/// flags any enumerator added without a name.
inline constexpr MessageType kLastMessageType = MessageType::kAck;
inline constexpr int kNumMessageTypes = static_cast<int>(kLastMessageType) + 1;
static_assert(kNumMessageTypes == 7,
              "keep kLastMessageType and MessageTypeName in sync with the "
              "MessageType enum");

std::string_view MessageTypeName(MessageType type);

/// Tallies messages by type. Schemes increment it as their protocol runs;
/// the simulator reports the totals.
class MessageCounter {
 public:
  void Count(MessageType type, int64_t n = 1) {
    counts_[static_cast<size_t>(type)] += n;
  }

  int64_t of(MessageType type) const {
    return counts_[static_cast<size_t>(type)];
  }

  int64_t total() const {
    int64_t t = 0;
    for (int64_t c : counts_) {
      t += c;
    }
    return t;
  }

  void Reset() { counts_.fill(0); }

  /// Adds another counter's tallies into this one (merging per-shard
  /// counters into the run total).
  void Merge(const MessageCounter& other) {
    for (int m = 0; m < kNumMessageTypes; ++m) {
      counts_[static_cast<size_t>(m)] += other.counts_[static_cast<size_t>(m)];
    }
  }

  std::string ToString() const;

 private:
  std::array<int64_t, kNumMessageTypes> counts_{};
};

}  // namespace dcv

#endif  // DCV_SIM_MESSAGE_H_
