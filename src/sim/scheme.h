#ifndef DCV_SIM_SCHEME_H_
#define DCV_SIM_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sim/channel.h"
#include "sim/message.h"
#include "trace/trace.h"

namespace dcv {

/// Everything a detection scheme sees at initialization time: the global
/// SUM constraint (sum_i weights[i] * X_i <= global_threshold), the
/// training trace it may mine for distributions, the message counter, and
/// the channel every protocol message must be routed through.
struct SimContext {
  int num_sites = 0;
  std::vector<int64_t> weights;  ///< Size num_sites; the A_i (all >= 1).
  int64_t global_threshold = 0;  ///< T.
  const Trace* training = nullptr;  ///< May be null for schemes not using it.
  MessageCounter* counter = nullptr;

  /// Transport for all site<->coordinator traffic. The runner installs one
  /// built from SimOptions::faults; contexts constructed by hand (tests)
  /// may leave it null, in which case the scheme falls back to an owned
  /// perfect channel via EnsureChannel.
  Channel* channel = nullptr;

  /// Optional observability sinks (both default null = observation off).
  /// Schemes record per-epoch trace events (local alarms, recomputes, band
  /// changes, ...) and registry counters through these; every record site
  /// goes through the DCV_OBS_* macros so a detached run costs one branch.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* recorder = nullptr;
};

/// Returns ctx->channel, creating and installing a perfect owned channel
/// bound to ctx->counter when none was provided.
inline Result<Channel*> EnsureChannel(SimContext* ctx,
                                      std::unique_ptr<Channel>* owned) {
  if (ctx->channel != nullptr) {
    return ctx->channel;
  }
  *owned = std::make_unique<Channel>();
  DCV_RETURN_IF_ERROR((*owned)->Init(ctx->num_sites, ctx->counter));
  ctx->channel = owned->get();
  return ctx->channel;
}

/// What a scheme did during one epoch.
struct EpochResult {
  int num_alarms = 0;        ///< Local constraint violations this epoch.
  bool polled = false;       ///< Coordinator learned the exact global sum.
  bool violation_reported = false;  ///< Scheme claims the global constraint
                                    ///< is violated this epoch.
};

/// A distributed violation-detection scheme: site-local logic plus
/// coordinator logic, with all communication charged to the context's
/// MessageCounter. One instance simulates all sites (the simulator is
/// single-process; the message counter is the fidelity boundary).
class DetectionScheme {
 public:
  virtual ~DetectionScheme() = default;

  virtual std::string_view name() const = 0;

  /// Called once before the run. Schemes build histograms / thresholds from
  /// ctx.training here. The context outlives the run.
  virtual Status Initialize(const SimContext& ctx) = 0;

  /// Feeds one epoch of per-site observations (size num_sites) and runs the
  /// scheme's protocol for that epoch.
  virtual Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) = 0;
};

}  // namespace dcv

#endif  // DCV_SIM_SCHEME_H_
