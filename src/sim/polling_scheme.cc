#include "sim/polling_scheme.h"

namespace dcv {

Status PollingScheme::Initialize(const SimContext& ctx) {
  if (period_ < 1) {
    return InvalidArgumentError("polling period must be >= 1");
  }
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  ctx_ = ctx;
  tick_ = 0;
  return OkStatus();
}

Result<EpochResult> PollingScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  if (tick_++ % period_ != 0) {
    return result;
  }
  ctx_.counter->Count(MessageType::kPollRequest, ctx_.num_sites);
  ctx_.counter->Count(MessageType::kPollResponse, ctx_.num_sites);
  result.polled = true;
  int64_t sum = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    sum += ctx_.weights[static_cast<size_t>(i)] *
           values[static_cast<size_t>(i)];
  }
  result.violation_reported = sum > ctx_.global_threshold;
  return result;
}

}  // namespace dcv
