#include "sim/polling_scheme.h"

namespace dcv {

Status PollingScheme::Initialize(const SimContext& ctx) {
  if (period_ < 1) {
    return InvalidArgumentError("polling period must be >= 1");
  }
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  ctx_ = ctx;
  DCV_ASSIGN_OR_RETURN(channel_, EnsureChannel(&ctx_, &owned_channel_));
  tick_ = 0;
  periodic_polls_ = ctx_.metrics != nullptr
                        ? ctx_.metrics->counter("scheme/periodic_polls")
                        : nullptr;
  return OkStatus();
}

Result<EpochResult> PollingScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  if (tick_++ % period_ != 0) {
    return result;
  }
  // Periodic poll with a per-epoch deadline; unreachable sites are
  // resolved by the channel's degradation policy (this scheme has no local
  // thresholds, so its only pessimistic fallback is the last-known table).
  DCV_OBS_COUNT(periodic_polls_, 1);
  PollOutcome poll = channel_->PollSites(values, ctx_.weights,
                                         /*pessimistic=*/{});
  result.polled = true;
  result.violation_reported = poll.weighted_sum > ctx_.global_threshold;
  return result;
}

}  // namespace dcv
