#include "sim/adaptive_filter_scheme.h"

#include <algorithm>
#include <cmath>

namespace dcv {

Status AdaptiveFilterScheme::Initialize(const SimContext& ctx) {
  if (options_.precision <= 0.0) {
    return InvalidArgumentError("adaptive-filter precision must be positive");
  }
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  if (options_.min_share < 0.0 || options_.min_share > 1.0) {
    return InvalidArgumentError("min_share must be in [0, 1]");
  }
  ctx_ = ctx;
  DCV_ASSIGN_OR_RETURN(channel_, EnsureChannel(&ctx_, &owned_channel_));
  const int n = std::max(1, ctx.num_sites);
  total_weighted_width_ =
      std::max(static_cast<double>(n),
               options_.precision * static_cast<double>(ctx.global_threshold));
  centers_.assign(static_cast<size_t>(ctx.num_sites), 0);
  centers_known_.assign(static_cast<size_t>(ctx.num_sites), 0);
  site_center_.assign(static_cast<size_t>(ctx.num_sites), 0);
  site_sent_.assign(static_cast<size_t>(ctx.num_sites), 0);
  half_widths_.assign(static_cast<size_t>(ctx.num_sites), 0);
  breach_counts_.assign(static_cast<size_t>(ctx.num_sites), 0);
  epochs_since_realloc_ = 0;
  for (int i = 0; i < ctx.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    double w = total_weighted_width_ /
               (static_cast<double>(n) *
                static_cast<double>(ctx.weights[si]));
    half_widths_[si] = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor(w / 2.0)));
  }
  return OkStatus();
}

void AdaptiveFilterScheme::ReallocateWidths() {
  // Width share = min_share of the uniform allocation plus the remainder
  // split in proportion to recent breach counts (Olston's cost-driven
  // reallocation, simplified). The total weighted width is preserved, so
  // the coordinator's error bound — and with it guaranteed detection — is
  // unchanged.
  const int n = std::max(1, ctx_.num_sites);
  int64_t total_breaches = 0;
  for (int64_t b : breach_counts_) {
    total_breaches += b;
  }
  const double uniform = total_weighted_width_ / static_cast<double>(n);
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    double share = uniform * options_.min_share;
    if (total_breaches > 0) {
      share += total_weighted_width_ * (1.0 - options_.min_share) *
               static_cast<double>(breach_counts_[si]) /
               static_cast<double>(total_breaches);
    } else {
      share += uniform * (1.0 - options_.min_share);
    }
    double w = share / static_cast<double>(ctx_.weights[si]);
    half_widths_[si] = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor(w / 2.0)));
    breach_counts_[si] = 0;
  }
  // New widths have to reach the sites: one update message each. Widths
  // are applied on both sides regardless of delivery outcome — a lost
  // width update only perturbs which side suppresses what, never the
  // coordinator's total error budget, so detection stays guaranteed.
  for (int i = 0; i < ctx_.num_sites; ++i) {
    channel_->SendToSite(i, MessageType::kFilterUpdate, /*reliable=*/true);
  }
  DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kWidthRealloc,
                channel_->epoch(), obs::TraceRecorder::kCoordinator,
                total_breaches);
}

Result<EpochResult> AdaptiveFilterScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  Channel& ch = *channel_;

  // A recovered site lost its filter state: it re-introduces itself with a
  // fresh bootstrap report, and the coordinator treats its center as
  // unknown (forcing polls) until that report arrives.
  for (int site : ch.newly_recovered()) {
    size_t si = static_cast<size_t>(site);
    site_sent_[si] = 0;
    centers_known_[si] = 0;
    ch.CountResync();
  }

  // Reports delayed in the network arrive now; late centers are better
  // than none — they move the coordinator's estimate and may end an
  // unknown-center polling spell.
  for (const Channel::Arrival& a :
       ch.TakeArrivals(MessageType::kFilterReport)) {
    size_t si = static_cast<size_t>(a.site);
    centers_[si] = a.payload;
    centers_known_[si] = 1;
  }

  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    if (!ch.SiteUp(i)) {
      continue;  // A crashed site neither observes nor reports.
    }
    if (!site_sent_[si]) {
      // Bootstrap: the site ships its first value; the coordinator
      // acknowledges with a filter installation.
      SendStatus s = ch.SendFromSite(i, MessageType::kFilterReport,
                                     /*reliable=*/true, values[si]);
      if (s == SendStatus::kDelivered) {
        ch.SendToSite(i, MessageType::kFilterUpdate, /*reliable=*/true);
        centers_[si] = values[si];
        centers_known_[si] = 1;
        site_center_[si] = values[si];
        site_sent_[si] = 1;
      } else if (s == SendStatus::kDelayed) {
        // The report is in flight; the site considers itself introduced.
        site_center_[si] = values[si];
        site_sent_[si] = 1;
      }
      // Lost outright: the site retries its bootstrap next epoch.
      continue;
    }
    // The site suppresses against its *own* view of the filter center,
    // which may lag the coordinator's when a report was delayed.
    int64_t lo = site_center_[si] - half_widths_[si];
    int64_t hi = site_center_[si] + half_widths_[si];
    if (values[si] < lo || values[si] > hi) {
      // Filter breach: report and re-center.
      ++result.num_alarms;
      DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kFilterReport,
                    ch.epoch(), i, values[si]);
      SendStatus s = ch.SendFromSite(i, MessageType::kFilterReport,
                                     /*reliable=*/true, values[si]);
      if (s == SendStatus::kDelivered) {
        ch.SendToSite(i, MessageType::kFilterUpdate, /*reliable=*/true);
        centers_[si] = values[si];
        site_center_[si] = values[si];
        ++breach_counts_[si];
      } else if (s == SendStatus::kDelayed) {
        site_center_[si] = values[si];
      }
      // Lost outright: the filter stays where it was on both sides; the
      // site will breach (and report) again if the value stays outside.
    }
  }

  if (options_.realloc_period > 0 &&
      ++epochs_since_realloc_ >= options_.realloc_period) {
    epochs_since_realloc_ = 0;
    ReallocateWidths();
  }

  // Coordinator-side bound check: can the true sum exceed T? While any
  // center is unknown (bootstrap not yet through, or site crashed before
  // introducing itself) the bound is unsound and the coordinator polls.
  int64_t estimate = 0;
  int64_t uncertainty = 0;
  bool unknown = false;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    estimate += ctx_.weights[si] * centers_[si];
    uncertainty += ctx_.weights[si] * half_widths_[si];
    unknown = unknown || !centers_known_[si];
  }
  if (unknown || estimate + uncertainty > ctx_.global_threshold) {
    PollOutcome poll = ch.PollSites(values, ctx_.weights, /*pessimistic=*/{});
    result.polled = true;
    result.violation_reported = poll.weighted_sum > ctx_.global_threshold;
  }
  return result;
}

}  // namespace dcv
