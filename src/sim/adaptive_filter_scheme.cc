#include "sim/adaptive_filter_scheme.h"

#include <algorithm>
#include <cmath>

namespace dcv {

Status AdaptiveFilterScheme::Initialize(const SimContext& ctx) {
  if (options_.precision <= 0.0) {
    return InvalidArgumentError("adaptive-filter precision must be positive");
  }
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  if (options_.min_share < 0.0 || options_.min_share > 1.0) {
    return InvalidArgumentError("min_share must be in [0, 1]");
  }
  ctx_ = ctx;
  const int n = std::max(1, ctx.num_sites);
  total_weighted_width_ =
      std::max(static_cast<double>(n),
               options_.precision * static_cast<double>(ctx.global_threshold));
  centers_.assign(static_cast<size_t>(ctx.num_sites), 0);
  half_widths_.assign(static_cast<size_t>(ctx.num_sites), 0);
  breach_counts_.assign(static_cast<size_t>(ctx.num_sites), 0);
  epochs_since_realloc_ = 0;
  for (int i = 0; i < ctx.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    double w = total_weighted_width_ /
               (static_cast<double>(n) *
                static_cast<double>(ctx.weights[si]));
    half_widths_[si] = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor(w / 2.0)));
  }
  have_centers_ = false;
  return OkStatus();
}

void AdaptiveFilterScheme::ReallocateWidths() {
  // Width share = min_share of the uniform allocation plus the remainder
  // split in proportion to recent breach counts (Olston's cost-driven
  // reallocation, simplified). The total weighted width is preserved, so
  // the coordinator's error bound — and with it guaranteed detection — is
  // unchanged.
  const int n = std::max(1, ctx_.num_sites);
  int64_t total_breaches = 0;
  for (int64_t b : breach_counts_) {
    total_breaches += b;
  }
  const double uniform = total_weighted_width_ / static_cast<double>(n);
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    double share = uniform * options_.min_share;
    if (total_breaches > 0) {
      share += total_weighted_width_ * (1.0 - options_.min_share) *
               static_cast<double>(breach_counts_[si]) /
               static_cast<double>(total_breaches);
    } else {
      share += uniform * (1.0 - options_.min_share);
    }
    double w = share / static_cast<double>(ctx_.weights[si]);
    half_widths_[si] = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor(w / 2.0)));
    breach_counts_[si] = 0;
  }
  // New widths have to reach the sites: one update message each.
  ctx_.counter->Count(MessageType::kFilterUpdate, ctx_.num_sites);
}

Result<EpochResult> AdaptiveFilterScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;

  if (!have_centers_) {
    // Bootstrap round: every site ships its first value.
    ctx_.counter->Count(MessageType::kFilterReport, ctx_.num_sites);
    ctx_.counter->Count(MessageType::kFilterUpdate, ctx_.num_sites);
    centers_ = values;
    have_centers_ = true;
  } else {
    for (int i = 0; i < ctx_.num_sites; ++i) {
      size_t si = static_cast<size_t>(i);
      int64_t lo = centers_[si] - half_widths_[si];
      int64_t hi = centers_[si] + half_widths_[si];
      if (values[si] < lo || values[si] > hi) {
        // Filter breach: report and re-center.
        ctx_.counter->Count(MessageType::kFilterReport);
        ctx_.counter->Count(MessageType::kFilterUpdate);
        centers_[si] = values[si];
        ++breach_counts_[si];
        ++result.num_alarms;
      }
    }
  }

  if (options_.realloc_period > 0 &&
      ++epochs_since_realloc_ >= options_.realloc_period) {
    epochs_since_realloc_ = 0;
    ReallocateWidths();
  }

  // Coordinator-side bound check: can the true sum exceed T?
  int64_t estimate = 0;
  int64_t uncertainty = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    estimate += ctx_.weights[si] * centers_[si];
    uncertainty += ctx_.weights[si] * half_widths_[si];
  }
  if (estimate + uncertainty > ctx_.global_threshold) {
    ctx_.counter->Count(MessageType::kPollRequest, ctx_.num_sites);
    ctx_.counter->Count(MessageType::kPollResponse, ctx_.num_sites);
    result.polled = true;
    int64_t sum = 0;
    for (int i = 0; i < ctx_.num_sites; ++i) {
      size_t si = static_cast<size_t>(i);
      sum += ctx_.weights[si] * values[si];
    }
    result.violation_reported = sum > ctx_.global_threshold;
  }
  return result;
}

}  // namespace dcv
