#ifndef DCV_SIM_BOOLEAN_SCHEME_H_
#define DCV_SIM_BOOLEAN_SCHEME_H_

#include <memory>
#include <string>
#include <vector>

#include "constraints/ast.h"
#include "constraints/normalize.h"
#include "histogram/distribution.h"
#include "sim/scheme.h"
#include "threshold/boolean_solver.h"

namespace dcv {

/// Monitoring scheme for *general boolean* global constraints (§5): the
/// full pipeline — normalize the constraint to CNF, build per-site
/// equi-depth histograms from the training trace, compile per-site bounds
/// with the BooleanThresholdSolver — deployed behind the standard
/// DetectionScheme interface.
///
/// Protocol per epoch: each site checks lo_i <= X_i <= hi_i locally; any
/// violation sends one alarm; on >= 1 alarm the coordinator polls all n
/// sites and evaluates the boolean constraint exactly.
///
/// Pair with SimOptions::is_violation so the runner scores detections
/// against the same boolean constraint.
class BooleanLocalScheme : public DetectionScheme {
 public:
  struct Options {
    /// Base per-atom threshold solver; must outlive the scheme.
    const ThresholdSolver* solver = nullptr;

    /// Equi-depth histogram resolution.
    int histogram_buckets = 100;

    /// Headroom multiplier for the declared per-site domain maximum.
    double domain_headroom = 4.0;

    /// Lift rounds for the boolean solver (§5.3).
    int lift_rounds = 4;
  };

  /// `constraint` is the global constraint G over site variables indexed
  /// by position in the trace.
  BooleanLocalScheme(BoolExpr constraint, Options options)
      : constraint_(std::move(constraint)), options_(options) {}

  std::string_view name() const override { return "boolean-local"; }

  Status Initialize(const SimContext& ctx) override;

  Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) override;

  /// Installed local bounds (for inspection/tests).
  const std::vector<SiteBounds>& bounds() const { return bounds_; }

 private:
  BoolExpr constraint_;
  Options options_;
  SimContext ctx_;
  Channel* channel_ = nullptr;
  std::unique_ptr<Channel> owned_channel_;
  std::vector<std::unique_ptr<DistributionModel>> models_;
  std::vector<SiteBounds> bounds_;
  /// Declared per-site domain maxima, used as the assume-breach
  /// substitute for sites that cannot be polled.
  std::vector<int64_t> domain_max_;
};

}  // namespace dcv

#endif  // DCV_SIM_BOOLEAN_SCHEME_H_
