#include "sim/message.h"

namespace dcv {

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kAlarm:
      return "alarm";
    case MessageType::kPollRequest:
      return "poll_request";
    case MessageType::kPollResponse:
      return "poll_response";
    case MessageType::kThresholdUpdate:
      return "threshold_update";
    case MessageType::kFilterReport:
      return "filter_report";
    case MessageType::kFilterUpdate:
      return "filter_update";
    case MessageType::kAck:
      return "ack";
  }
  return "?";
}

std::string MessageCounter::ToString() const {
  std::string out;
  for (int i = 0; i < kNumMessageTypes; ++i) {
    if (counts_[static_cast<size_t>(i)] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += std::string(MessageTypeName(static_cast<MessageType>(i))) + "=" +
           std::to_string(counts_[static_cast<size_t>(i)]);
  }
  return out.empty() ? "none" : out;
}

}  // namespace dcv
