#ifndef DCV_SIM_LOCAL_SCHEME_H_
#define DCV_SIM_LOCAL_SCHEME_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "histogram/change_detector.h"
#include "histogram/distribution.h"
#include "sim/scheme.h"
#include "threshold/solver.h"

namespace dcv {

/// The paper's scheme: static local thresholds T_i chosen by a pluggable
/// ThresholdSolver (FPTAS / Equal-Value / Equal-Tail / exact DP) from
/// per-site equi-depth histograms built on the training trace (§6.1).
///
/// Protocol per epoch:
///  * each site checks X_i <= T_i locally (no messages while it holds);
///  * every violating site sends one alarm;
///  * on >= 1 alarm the coordinator polls all n sites (n requests +
///    n responses) and evaluates the global constraint exactly.
///
/// With change detection enabled, each site additionally feeds its stream
/// into a KS-based ChangeDetector (§3.2 / [17]); on a detected shift the
/// site's histogram is rebuilt from the detector's recent window and the
/// coordinator recomputes and pushes all local thresholds (n threshold-
/// update messages).
class LocalThresholdScheme : public DetectionScheme {
 public:
  enum class HistogramKind {
    kEquiDepth,  ///< What the paper's experiments use (§6.4).
    kEquiWidth,  ///< Cheaper, uniform-bucket alternative (ablation).
  };

  /// How the coordinator checks the global constraint while local
  /// constraints are violated (§3.1: "using either continuous polling or
  /// the algorithms of Olston et al.").
  enum class GlobalCheck {
    /// Poll all n sites every alarmed epoch (exact; the §6 evaluation).
    kPoll,
    /// Olston-style tracking: only sites currently above their threshold
    /// carry a filter; they report (1 message) when their value moves by
    /// more than the filter width or drops back below the threshold.
    /// Violations are flagged from the certified upper bound
    ///   sum_quiet A_i T_i + sum_tracked A_i (center_i + w_i)
    /// so no violation is ever missed, at the cost of possible
    /// over-reports within the filter width (the paper's small relative
    /// error epsilon). Far cheaper than polling when alarm episodes are
    /// long and traffic is smooth.
    kTrack,
  };

  struct Options {
    /// Threshold selection algorithm; must outlive the scheme.
    const ThresholdSolver* solver = nullptr;

    /// Histogram resolution (paper: 100 buckets) and flavor.
    int histogram_buckets = 100;
    HistogramKind histogram_kind = HistogramKind::kEquiDepth;

    /// Enable KS-based distribution-change detection and threshold
    /// recomputation.
    bool change_detection = false;
    ChangeDetector::Options change_options;

    /// On a detected change, histograms are rebuilt from the last
    /// `rebuild_window` observations (a rolling per-site history), not just
    /// from the detector's short comparison window — short windows are
    /// biased samples (e.g., they may consist entirely of one burst) and
    /// produce bad thresholds.
    size_t rebuild_window = 1500;

    /// When true, alarms carry the site's observed value, and the
    /// coordinator first checks the certified bound
    ///   sum_{alarming} A_i x_i + sum_{quiet} A_i T_i <= T
    /// (quiet sites are at most at their thresholds). Only when the bound
    /// is inconclusive does it fall back to a full poll. Detection stays
    /// guaranteed; polls on shallow threshold crossings disappear. Off by
    /// default to match the paper's protocol exactly.
    ///
    /// Piggybacking only pays off when the thresholds leave headroom below
    /// the global budget — combine it with budget_discount < 1.
    bool piggyback_values = false;

    /// Global-check protocol while alarms are active.
    GlobalCheck global_check = GlobalCheck::kPoll;

    /// Filter width for GlobalCheck::kTrack, as a fraction of the global
    /// threshold (split across sites).
    double tracking_precision = 0.02;

    /// Solve the local thresholds against budget_discount * T instead of T
    /// (in (0, 1]). Discounting trades more (1-message) alarms for fewer
    /// (2n-message) polls when piggyback_values is on: alarms whose
    /// certified bound stays within the reserved headroom are absorbed
    /// silently. 1.0 reproduces the paper's protocol.
    double budget_discount = 1.0;

    /// Headroom multiplier for the declared per-site domain maximum
    /// M_i = headroom * max(training values); eval values above M_i are
    /// handled correctly (they simply violate any threshold).
    double domain_headroom = 4.0;
  };

  explicit LocalThresholdScheme(Options options);

  std::string_view name() const override { return name_; }

  Status Initialize(const SimContext& ctx) override;

  Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) override;

  /// Thresholds currently installed (for inspection/tests).
  const std::vector<int64_t>& thresholds() const { return thresholds_; }

  /// Number of change-triggered threshold recomputations so far.
  int64_t num_recomputes() const { return num_recomputes_; }

 private:
  Status RecomputeThresholds();
  /// Pushes the coordinator's current thresholds to the given sites over
  /// the channel; sites that receive (possibly late) install them.
  void PushThresholds(const std::vector<int>& sites);
  Result<std::unique_ptr<DistributionModel>> BuildModel(
      const std::vector<int64_t>& data, int64_t domain_max) const;

  Options options_;
  std::string name_;
  SimContext ctx_;
  Channel* channel_ = nullptr;
  std::unique_ptr<Channel> owned_channel_;
  std::vector<std::unique_ptr<DistributionModel>> models_;
  std::vector<std::unique_ptr<ChangeDetector>> detectors_;
  std::vector<std::deque<int64_t>> history_;  ///< Rolling rebuild windows.
  std::vector<int64_t> thresholds_;
  /// What each site actually enforces; diverges from the coordinator's
  /// `thresholds_` when a push is lost or the site is crashed, and
  /// converges again via the recovery re-sync.
  std::vector<int64_t> site_thresholds_;
  std::vector<int64_t> domain_max_;
  // GlobalCheck::kTrack state: filter center per tracked (above-threshold)
  // site; -1 when the site is quiet.
  std::vector<int64_t> track_center_;
  int64_t num_recomputes_ = 0;
};

}  // namespace dcv

#endif  // DCV_SIM_LOCAL_SCHEME_H_
