#ifndef DCV_SIM_POLLING_SCHEME_H_
#define DCV_SIM_POLLING_SCHEME_H_

#include <memory>

#include "sim/scheme.h"

namespace dcv {

/// The traditional brute-force baseline (paper §1, "Brute force
/// solutions"): the coordinator polls every site every `period` epochs and
/// checks the global constraint on the returned snapshot. Cheap periods
/// miss violations between polls; period 1 detects everything at maximal
/// cost. This scheme exists to quantify the polling-frequency/detection
/// trade-off the local-constraint approach eliminates.
class PollingScheme : public DetectionScheme {
 public:
  /// period >= 1: poll every `period`-th epoch (first poll at epoch 0).
  explicit PollingScheme(int64_t period) : period_(period) {}

  std::string_view name() const override { return "polling"; }

  Status Initialize(const SimContext& ctx) override;

  Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) override;

 private:
  int64_t period_;
  int64_t tick_ = 0;
  SimContext ctx_;
  Channel* channel_ = nullptr;
  std::unique_ptr<Channel> owned_channel_;
  obs::Counter* periodic_polls_ = nullptr;  ///< Cached; null = metrics off.
};

}  // namespace dcv

#endif  // DCV_SIM_POLLING_SCHEME_H_
