#ifndef DCV_SIM_MONITOR_PLAN_H_
#define DCV_SIM_MONITOR_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "threshold/boolean_solver.h"

namespace dcv {

/// The deployable artifact of threshold selection: for every site, the
/// local bounds to install, plus the provenance (constraint text, global
/// threshold, solver) needed to audit or recompute them. Serializes to a
/// small line-based text format so plans can be shipped to sites and
/// checked into config management:
///
///   # dcv-monitor-plan v1
///   constraint: <original constraint text>
///   threshold: <global threshold, for plain SUM constraints>
///   solver: <scheme name>
///   site: <name> <lo> <hi>
///   site: ...
struct MonitorPlan {
  std::string constraint_text;
  int64_t global_threshold = 0;
  std::string solver_name;
  std::vector<std::string> site_names;   ///< Aligned with bounds.
  std::vector<SiteBounds> bounds;

  /// Checks structural consistency (names/bounds aligned, names nonempty
  /// and whitespace-free, lo <= hi unless the interval is the documented
  /// empty "always alarm" form).
  Status Validate() const;

  /// True when site `i`'s current value satisfies its local constraint.
  bool SiteOk(int site, int64_t value) const {
    return bounds[static_cast<size_t>(site)].Contains(value);
  }

  std::string Serialize() const;
  static Result<MonitorPlan> Parse(const std::string& text);

  Status WriteToFile(const std::string& path) const;
  static Result<MonitorPlan> ReadFromFile(const std::string& path);
};

}  // namespace dcv

#endif  // DCV_SIM_MONITOR_PLAN_H_
