#include "sim/boolean_scheme.h"

#include <algorithm>
#include <cmath>

#include "histogram/equi_depth.h"

namespace dcv {

Status BooleanLocalScheme::Initialize(const SimContext& ctx) {
  if (options_.solver == nullptr) {
    return InvalidArgumentError("BooleanLocalScheme requires a solver");
  }
  if (ctx.training == nullptr || ctx.training->num_epochs() == 0) {
    return InvalidArgumentError(
        "BooleanLocalScheme requires a nonempty training trace");
  }
  if (ctx.training->num_sites() != ctx.num_sites) {
    return InvalidArgumentError("training trace site count mismatch");
  }
  if (constraint_.max_var() >= ctx.num_sites) {
    return InvalidArgumentError(
        "constraint references more variables than the trace has sites");
  }
  ctx_ = ctx;
  DCV_ASSIGN_OR_RETURN(channel_, EnsureChannel(&ctx_, &owned_channel_));

  models_.clear();
  domain_max_.clear();
  std::vector<const DistributionModel*> model_ptrs;
  for (int i = 0; i < ctx.num_sites; ++i) {
    std::vector<int64_t> series = ctx.training->SiteSeries(i);
    int64_t observed_max = *std::max_element(series.begin(), series.end());
    int64_t m = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               options_.domain_headroom *
               static_cast<double>(std::max<int64_t>(observed_max, 1)))));
    DCV_ASSIGN_OR_RETURN(
        EquiDepthHistogram model,
        EquiDepthHistogram::Build(series, m, options_.histogram_buckets));
    models_.push_back(std::make_unique<EquiDepthHistogram>(std::move(model)));
    model_ptrs.push_back(models_.back().get());
    domain_max_.push_back(m);
  }

  DCV_ASSIGN_OR_RETURN(CnfConstraint cnf, ToCnf(constraint_));
  BooleanThresholdSolver::Options solver_options;
  solver_options.lift_rounds = options_.lift_rounds;
  BooleanThresholdSolver solver(options_.solver, solver_options);
  solver.set_metrics(ctx_.metrics);
  DCV_ASSIGN_OR_RETURN(BooleanSolution solution,
                       solver.Solve(cnf, model_ptrs));
  bounds_ = std::move(solution.bounds);
  return OkStatus();
}

Result<EpochResult> BooleanLocalScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  Channel& ch = *channel_;

  // Alarms delayed in the network arriving now still trigger a poll.
  // (No re-sync on recovery: the per-site bounds are static.)
  std::vector<Channel::Arrival> stale_alarms =
      ch.TakeArrivals(MessageType::kAlarm);

  int delivered_alarms = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    if (!ch.SiteUp(i)) {
      continue;  // A crashed site checks nothing and sends nothing.
    }
    if (!bounds_[si].Contains(values[si])) {
      ++result.num_alarms;
      DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kLocalAlarm,
                    ch.epoch(), i, values[si]);
      SendStatus s =
          ch.SendFromSite(i, MessageType::kAlarm, /*reliable=*/true);
      if (s == SendStatus::kDelivered) {
        ++delivered_alarms;
      }
    }
  }
  if (delivered_alarms > 0 || !stale_alarms.empty()) {
    // Unreachable sites degrade to last-known or (assume-breach) their
    // declared domain maximum — for boolean constraints an extreme value
    // is the natural "suspect the worst" substitute.
    PollOutcome poll = ch.PollSites(values, ctx_.weights, domain_max_);
    result.polled = true;
    result.violation_reported = !constraint_.Evaluate(poll.values);
  }
  return result;
}

}  // namespace dcv
