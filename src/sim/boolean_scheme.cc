#include "sim/boolean_scheme.h"

#include <algorithm>
#include <cmath>

#include "histogram/equi_depth.h"

namespace dcv {

Status BooleanLocalScheme::Initialize(const SimContext& ctx) {
  if (options_.solver == nullptr) {
    return InvalidArgumentError("BooleanLocalScheme requires a solver");
  }
  if (ctx.training == nullptr || ctx.training->num_epochs() == 0) {
    return InvalidArgumentError(
        "BooleanLocalScheme requires a nonempty training trace");
  }
  if (ctx.training->num_sites() != ctx.num_sites) {
    return InvalidArgumentError("training trace site count mismatch");
  }
  if (constraint_.max_var() >= ctx.num_sites) {
    return InvalidArgumentError(
        "constraint references more variables than the trace has sites");
  }
  ctx_ = ctx;

  models_.clear();
  std::vector<const DistributionModel*> model_ptrs;
  for (int i = 0; i < ctx.num_sites; ++i) {
    std::vector<int64_t> series = ctx.training->SiteSeries(i);
    int64_t observed_max = *std::max_element(series.begin(), series.end());
    int64_t m = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               options_.domain_headroom *
               static_cast<double>(std::max<int64_t>(observed_max, 1)))));
    DCV_ASSIGN_OR_RETURN(
        EquiDepthHistogram model,
        EquiDepthHistogram::Build(series, m, options_.histogram_buckets));
    models_.push_back(std::make_unique<EquiDepthHistogram>(std::move(model)));
    model_ptrs.push_back(models_.back().get());
  }

  DCV_ASSIGN_OR_RETURN(CnfConstraint cnf, ToCnf(constraint_));
  BooleanThresholdSolver::Options solver_options;
  solver_options.lift_rounds = options_.lift_rounds;
  BooleanThresholdSolver solver(options_.solver, solver_options);
  DCV_ASSIGN_OR_RETURN(BooleanSolution solution,
                       solver.Solve(cnf, model_ptrs));
  bounds_ = std::move(solution.bounds);
  return OkStatus();
}

Result<EpochResult> BooleanLocalScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    if (!bounds_[si].Contains(values[si])) {
      ++result.num_alarms;
      ctx_.counter->Count(MessageType::kAlarm);
    }
  }
  if (result.num_alarms > 0) {
    ctx_.counter->Count(MessageType::kPollRequest, ctx_.num_sites);
    ctx_.counter->Count(MessageType::kPollResponse, ctx_.num_sites);
    result.polled = true;
    result.violation_reported = !constraint_.Evaluate(values);
  }
  return result;
}

}  // namespace dcv
