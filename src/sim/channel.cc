#include "sim/channel.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace dcv {

bool FaultSpec::any_faults() const {
  if (loss > 0.0 || duplicate > 0.0 || delay > 0.0) {
    return true;
  }
  for (double p : per_site_loss) {
    if (p > 0.0) {
      return true;
    }
  }
  return !crashes.empty() || !partitions.empty();
}

Status FaultSpec::Validate(int num_sites) const {
  auto is_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!is_prob(loss) || !is_prob(duplicate) || !is_prob(delay)) {
    return InvalidArgumentError(
        "fault probabilities must be in [0, 1]");
  }
  if (max_delay_epochs < 1) {
    return InvalidArgumentError("max_delay_epochs must be >= 1");
  }
  if (!per_site_loss.empty() &&
      static_cast<int>(per_site_loss.size()) != num_sites) {
    return InvalidArgumentError(
        "per_site_loss must be empty or one probability per site");
  }
  for (double p : per_site_loss) {
    if (!is_prob(p)) {
      return InvalidArgumentError("per_site_loss entries must be in [0, 1]");
    }
  }
  for (const CrashWindow& c : crashes) {
    if (c.site < 0 || c.site >= num_sites) {
      return InvalidArgumentError("crash window names a site out of range");
    }
    if (c.from >= c.to) {
      return InvalidArgumentError("crash window must satisfy from < to");
    }
  }
  for (const EpochWindow& w : partitions) {
    if (w.from >= w.to) {
      return InvalidArgumentError("partition window must satisfy from < to");
    }
  }
  if (retry.max_attempts < 1) {
    return InvalidArgumentError("retry.max_attempts must be >= 1");
  }
  if (retry.backoff_base_ticks < 0) {
    return InvalidArgumentError("retry.backoff_base_ticks must be >= 0");
  }
  return OkStatus();
}

std::string ChannelStats::ToString() const {
  std::string out;
  auto add = [&](const char* key, int64_t v) {
    if (v == 0) {
      return;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += std::string(key) + "=" + std::to_string(v);
  };
  add("transmissions", transmissions);
  add("delivered", delivered);
  add("dropped", dropped);
  add("blackholed", blackholed);
  add("duplicates", duplicates);
  add("delayed", delayed);
  add("late_deliveries", late_deliveries);
  add("delivery_delay_epochs", delivery_delay_epochs);
  add("retransmissions", retransmissions);
  add("backoff_ticks", backoff_ticks);
  add("acks", acks);
  add("give_ups", give_ups);
  add("crashed_sends", crashed_sends);
  add("timed_out_polls", timed_out_polls);
  add("degraded_decisions", degraded_decisions);
  add("resyncs", resyncs);
  return out.empty() ? "none" : out;
}

std::string ChannelStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("transmissions").Value(transmissions);
  w.Key("delivered").Value(delivered);
  w.Key("dropped").Value(dropped);
  w.Key("blackholed").Value(blackholed);
  w.Key("duplicates").Value(duplicates);
  w.Key("delayed").Value(delayed);
  w.Key("late_deliveries").Value(late_deliveries);
  w.Key("delivery_delay_epochs").Value(delivery_delay_epochs);
  w.Key("retransmissions").Value(retransmissions);
  w.Key("backoff_ticks").Value(backoff_ticks);
  w.Key("acks").Value(acks);
  w.Key("give_ups").Value(give_ups);
  w.Key("crashed_sends").Value(crashed_sends);
  w.Key("timed_out_polls").Value(timed_out_polls);
  w.Key("degraded_decisions").Value(degraded_decisions);
  w.Key("resyncs").Value(resyncs);
  w.EndObject();
  return w.str();
}

ChannelStats operator-(const ChannelStats& a, const ChannelStats& b) {
  ChannelStats d;
  d.transmissions = a.transmissions - b.transmissions;
  d.delivered = a.delivered - b.delivered;
  d.dropped = a.dropped - b.dropped;
  d.blackholed = a.blackholed - b.blackholed;
  d.duplicates = a.duplicates - b.duplicates;
  d.delayed = a.delayed - b.delayed;
  d.late_deliveries = a.late_deliveries - b.late_deliveries;
  d.delivery_delay_epochs = a.delivery_delay_epochs - b.delivery_delay_epochs;
  d.retransmissions = a.retransmissions - b.retransmissions;
  d.backoff_ticks = a.backoff_ticks - b.backoff_ticks;
  d.acks = a.acks - b.acks;
  d.give_ups = a.give_ups - b.give_ups;
  d.crashed_sends = a.crashed_sends - b.crashed_sends;
  d.timed_out_polls = a.timed_out_polls - b.timed_out_polls;
  d.degraded_decisions = a.degraded_decisions - b.degraded_decisions;
  d.resyncs = a.resyncs - b.resyncs;
  return d;
}

ChannelStats operator+(const ChannelStats& a, const ChannelStats& b) {
  ChannelStats s;
  s.transmissions = a.transmissions + b.transmissions;
  s.delivered = a.delivered + b.delivered;
  s.dropped = a.dropped + b.dropped;
  s.blackholed = a.blackholed + b.blackholed;
  s.duplicates = a.duplicates + b.duplicates;
  s.delayed = a.delayed + b.delayed;
  s.late_deliveries = a.late_deliveries + b.late_deliveries;
  s.delivery_delay_epochs = a.delivery_delay_epochs + b.delivery_delay_epochs;
  s.retransmissions = a.retransmissions + b.retransmissions;
  s.backoff_ticks = a.backoff_ticks + b.backoff_ticks;
  s.acks = a.acks + b.acks;
  s.give_ups = a.give_ups + b.give_ups;
  s.crashed_sends = a.crashed_sends + b.crashed_sends;
  s.timed_out_polls = a.timed_out_polls + b.timed_out_polls;
  s.degraded_decisions = a.degraded_decisions + b.degraded_decisions;
  s.resyncs = a.resyncs + b.resyncs;
  return s;
}

Channel::Channel(FaultSpec spec)
    : spec_(std::move(spec)),
      perfect_(!spec_.any_faults()),
      rng_(spec_.seed) {}

Status Channel::Init(int num_sites, MessageCounter* counter) {
  if (num_sites < 0) {
    return InvalidArgumentError("num_sites must be >= 0");
  }
  if (counter == nullptr) {
    return InvalidArgumentError("Channel requires a MessageCounter");
  }
  DCV_RETURN_IF_ERROR(spec_.Validate(num_sites));
  num_sites_ = num_sites;
  counter_ = counter;
  epoch_ = 0;
  partitioned_ = false;
  up_.assign(static_cast<size_t>(num_sites), 1);
  newly_recovered_.clear();
  pending_.clear();
  arrivals_.clear();
  last_known_.assign(static_cast<size_t>(num_sites), 0);
  has_last_known_.assign(static_cast<size_t>(num_sites), 0);
  stats_ = ChannelStats{};
  // Apply windows covering epoch 0 so sites configured to start crashed do.
  BeginEpoch(0);
  return OkStatus();
}

void Channel::SetObserver(obs::MetricsRegistry* metrics,
                          obs::TraceRecorder* recorder) {
  metrics_ = metrics;
  recorder_ = recorder;
  msg_counters_.fill(nullptr);
  if (metrics_ != nullptr) {
    for (int m = 0; m < kNumMessageTypes; ++m) {
      msg_counters_[static_cast<size_t>(m)] = metrics_->counter(
          "channel/msg/" +
          std::string(MessageTypeName(static_cast<MessageType>(m))));
    }
  }
}

void Channel::BeginEpoch(int64_t epoch) {
  epoch_ = epoch;
  newly_recovered_.clear();
  if (perfect_) {
    return;
  }
  for (int i = 0; i < num_sites_; ++i) {
    bool down = false;
    for (const CrashWindow& c : spec_.crashes) {
      if (c.site == i && epoch >= c.from && epoch < c.to) {
        down = true;
        break;
      }
    }
    size_t si = static_cast<size_t>(i);
    if (up_[si] == 0 && !down) {
      newly_recovered_.push_back(i);
      DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kRecovery, epoch, i);
    } else if (up_[si] != 0 && down) {
      DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kCrash, epoch, i);
    }
    up_[si] = down ? 0 : 1;
  }
  partitioned_ = false;
  for (const EpochWindow& w : spec_.partitions) {
    if (epoch >= w.from && epoch < w.to) {
      partitioned_ = true;
      break;
    }
  }
  // Deliver due delayed messages into the arrival queue (coordinator
  // inbox); site-bound deliveries are applied by the sender on kDelayed,
  // so here they only need the lateness accounting.
  for (size_t p = 0; p < pending_.size();) {
    if (pending_[p].deliver_epoch > epoch) {
      ++p;
      continue;
    }
    const Pending& m = pending_[p];
    if (m.to_coordinator) {
      if (partitioned_) {
        ++stats_.blackholed;
      } else {
        ++stats_.late_deliveries;
        stats_.delivery_delay_epochs += epoch - m.sent_epoch;
        arrivals_.push_back(Arrival{m.type, m.site, m.payload, m.sent_epoch});
      }
    } else {
      if (SiteUp(m.site)) {
        ++stats_.late_deliveries;
        stats_.delivery_delay_epochs += epoch - m.sent_epoch;
      } else {
        ++stats_.blackholed;
      }
    }
    pending_[p] = pending_.back();
    pending_.pop_back();
  }
}

std::vector<Channel::Arrival> Channel::TakeArrivals(MessageType type) {
  std::vector<Arrival> out;
  for (size_t i = 0; i < arrivals_.size();) {
    if (arrivals_[i].type == type) {
      out.push_back(arrivals_[i]);
      arrivals_[i] = arrivals_.back();
      arrivals_.pop_back();
    } else {
      ++i;
    }
  }
  // Swap-removal scrambles order; restore send order for determinism.
  std::sort(out.begin(), out.end(), [](const Arrival& a, const Arrival& b) {
    return a.sent_epoch != b.sent_epoch ? a.sent_epoch < b.sent_epoch
                                        : a.site < b.site;
  });
  return out;
}

double Channel::LossFor(int site) const {
  if (!spec_.per_site_loss.empty()) {
    return spec_.per_site_loss[static_cast<size_t>(site)];
  }
  return spec_.loss;
}

bool Channel::Lose(int site) {
  double p = LossFor(site);
  if (p <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(p);
}

SendStatus Channel::TransmitOnce(int site, MessageType type, int64_t payload,
                                 bool to_coordinator, bool receiver_up,
                                 bool allow_delay) {
  Charge(type);
  ++stats_.transmissions;
  if (partitioned_ || !receiver_up) {
    ++stats_.blackholed;
    return SendStatus::kLost;
  }
  if (Lose(site)) {
    ++stats_.dropped;
    return SendStatus::kLost;
  }
  if (allow_delay && spec_.delay > 0.0 && rng_.Bernoulli(spec_.delay)) {
    ++stats_.delayed;
    int64_t d = rng_.UniformInt(1, spec_.max_delay_epochs);
    pending_.push_back(
        Pending{type, site, payload, epoch_, epoch_ + d, to_coordinator});
    return SendStatus::kDelayed;
  }
  ++stats_.delivered;
  if (spec_.duplicate > 0.0 && rng_.Bernoulli(spec_.duplicate)) {
    Charge(type);
    ++stats_.transmissions;
    ++stats_.duplicates;
  }
  return SendStatus::kDelivered;
}

SendStatus Channel::SendOneWay(int site, MessageType type, bool reliable,
                               int64_t payload, bool to_coordinator) {
  if (perfect_) {
    Charge(type);
    ++stats_.transmissions;
    ++stats_.delivered;
    return SendStatus::kDelivered;
  }
  const bool sender_up = to_coordinator ? SiteUp(site) : true;
  const bool receiver_up = to_coordinator ? true : SiteUp(site);
  if (!sender_up) {
    ++stats_.crashed_sends;
    return SendStatus::kSenderDown;
  }
  if (!reliable || !spec_.retry.enable_acks) {
    return TransmitOnce(site, type, payload, to_coordinator, receiver_up,
                        /*allow_delay=*/true);
  }

  // Reliable: bounded retransmission with exponential backoff until an ack
  // comes back. A delayed data copy is enqueued at most once; further
  // timely deliveries after the first count as duplicates.
  bool got_through = false;
  bool delayed_copy = false;
  for (int attempt = 1; attempt <= spec_.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retransmissions;
      stats_.backoff_ticks +=
          static_cast<int64_t>(spec_.retry.backoff_base_ticks)
          << (attempt - 2);
      DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kRetransmission, epoch_,
                    site, attempt);
    }
    SendStatus fate =
        TransmitOnce(site, type, payload, to_coordinator, receiver_up,
                     /*allow_delay=*/!got_through && !delayed_copy);
    if (fate == SendStatus::kLost) {
      continue;
    }
    if (fate == SendStatus::kDelayed) {
      delayed_copy = true;  // Will arrive, but no timely ack: keep trying.
      continue;
    }
    if (got_through) {
      // The receiver already had it; this arrival is a duplicate.
      --stats_.delivered;
      ++stats_.duplicates;
    }
    got_through = true;
    // The ack travels the reverse direction over the same lossy link.
    Charge(MessageType::kAck);
    ++stats_.transmissions;
    ++stats_.acks;
    if (!Lose(site)) {
      return SendStatus::kDelivered;
    }
    ++stats_.dropped;  // Lost ack: the sender retransmits.
  }
  ++stats_.give_ups;
  DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kGiveUp, epoch_, site);
  if (got_through) {
    return SendStatus::kDelivered;
  }
  return delayed_copy ? SendStatus::kDelayed : SendStatus::kLost;
}

SendStatus Channel::SendFromSite(int site, MessageType type, bool reliable,
                                 int64_t payload) {
  return SendOneWay(site, type, reliable, payload, /*to_coordinator=*/true);
}

SendStatus Channel::SendToSite(int site, MessageType type, bool reliable,
                               int64_t payload) {
  return SendOneWay(site, type, reliable, payload, /*to_coordinator=*/false);
}

void Channel::RecordLastKnown(int site, int64_t value) {
  last_known_[static_cast<size_t>(site)] = value;
  has_last_known_[static_cast<size_t>(site)] = 1;
}

PollOutcome Channel::PollSites(const std::vector<int64_t>& true_values,
                               const std::vector<int64_t>& weights,
                               const std::vector<int64_t>& pessimistic) {
  DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kPollStart, epoch_);
  obs::ScopedTimer poll_timer(
      metrics_ != nullptr ? metrics_->histogram("channel/poll_us") : nullptr);
  PollOutcome out;
  out.values.assign(static_cast<size_t>(num_sites_), 0);
  auto weight = [&](int i) {
    return weights.empty() ? int64_t{1} : weights[static_cast<size_t>(i)];
  };

  if (perfect_) {
    Charge(MessageType::kPollRequest, num_sites_);
    Charge(MessageType::kPollResponse, num_sites_);
    stats_.transmissions += 2 * num_sites_;
    stats_.delivered += 2 * num_sites_;
    for (int i = 0; i < num_sites_; ++i) {
      size_t si = static_cast<size_t>(i);
      out.values[si] = true_values[si];
      RecordLastKnown(i, true_values[si]);
      out.weighted_sum += weight(i) * true_values[si];
    }
    out.responses = num_sites_;
    DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kPollEnd, epoch_,
                  obs::TraceRecorder::kCoordinator, out.responses,
                  poll_timer.ElapsedUs());
    return out;
  }

  const int attempts =
      spec_.retry.enable_acks ? spec_.retry.max_attempts : 1;
  for (int i = 0; i < num_sites_; ++i) {
    size_t si = static_cast<size_t>(i);
    bool answered = false;
    for (int attempt = 1; attempt <= attempts && !answered; ++attempt) {
      if (attempt > 1) {
        ++stats_.retransmissions;
        stats_.backoff_ticks +=
            static_cast<int64_t>(spec_.retry.backoff_base_ticks)
            << (attempt - 2);
        DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kRetransmission, epoch_,
                      i, attempt);
      }
      // Request leg. A delayed request misses the epoch deadline, so delay
      // counts as a timeout for the round trip.
      Charge(MessageType::kPollRequest);
      ++stats_.transmissions;
      if (partitioned_ || !SiteUp(i)) {
        ++stats_.blackholed;
        continue;
      }
      if (Lose(i) || (spec_.delay > 0.0 && rng_.Bernoulli(spec_.delay))) {
        ++stats_.dropped;
        continue;
      }
      // Response leg.
      Charge(MessageType::kPollResponse);
      ++stats_.transmissions;
      if (Lose(i) || (spec_.delay > 0.0 && rng_.Bernoulli(spec_.delay))) {
        ++stats_.dropped;
        continue;
      }
      stats_.delivered += 2;
      answered = true;
    }
    if (answered) {
      out.values[si] = true_values[si];
      RecordLastKnown(i, true_values[si]);
      ++out.responses;
    } else {
      ++out.timeouts;
      ++stats_.timed_out_polls;
      DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kDegraded, epoch_, i);
      int64_t fallback =
          si < pessimistic.size() ? pessimistic[si] : int64_t{0};
      if (spec_.degrade == DegradeMode::kLastKnown && has_last_known_[si]) {
        out.values[si] = last_known_[si];
      } else {
        out.values[si] = fallback;
      }
    }
    out.weighted_sum += weight(i) * out.values[si];
  }
  if (out.timeouts > 0) {
    out.degraded = true;
    ++stats_.degraded_decisions;
  }
  DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kPollEnd, epoch_,
                obs::TraceRecorder::kCoordinator, out.responses,
                poll_timer.ElapsedUs());
  return out;
}

}  // namespace dcv
