#include "sim/geometric_scheme.h"

#include <algorithm>

namespace dcv {

Status GeometricScheme::Initialize(const SimContext& ctx) {
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  ctx_ = ctx;
  // Initial thresholds: equal split of the global budget (the adaptive
  // rounds take over from the first alarm onward).
  thresholds_.assign(static_cast<size_t>(ctx.num_sites), 0);
  int64_t n = std::max(1, ctx.num_sites);
  for (int i = 0; i < ctx.num_sites; ++i) {
    thresholds_[static_cast<size_t>(i)] =
        ctx.global_threshold / (n * ctx.weights[static_cast<size_t>(i)]);
  }
  return OkStatus();
}

Result<EpochResult> GeometricScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    if (values[static_cast<size_t>(i)] > thresholds_[static_cast<size_t>(i)]) {
      ++result.num_alarms;
      ctx_.counter->Count(MessageType::kAlarm);
    }
  }
  if (result.num_alarms == 0) {
    return result;
  }

  // Round 1: collect all current values.
  ctx_.counter->Count(MessageType::kPollRequest, ctx_.num_sites);
  ctx_.counter->Count(MessageType::kPollResponse, ctx_.num_sites);
  result.polled = true;
  int64_t weighted_sum = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    weighted_sum += ctx_.weights[static_cast<size_t>(i)] *
                    values[static_cast<size_t>(i)];
  }
  result.violation_reported = weighted_sum > ctx_.global_threshold;

  // Round 2: redistribute the slack equally and install new thresholds.
  // Floor division (also for negative slack) keeps sum A_i*T_i <= T, so the
  // covering property is preserved: while the system stays in violation at
  // least one local constraint stays violated and polling continues.
  const int64_t n = std::max(1, ctx_.num_sites);
  const int64_t slack = ctx_.global_threshold - weighted_sum;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    // Per-site slack share is in weighted units; convert to value units.
    int64_t denom = n * ctx_.weights[si];
    int64_t share = slack >= 0 ? slack / denom
                               : -((-slack + denom - 1) / denom);
    // Thresholds may go negative while the system is in violation; a
    // negative threshold simply means "always alarm", which is what keeps
    // the coordinator polling until the violation clears.
    thresholds_[si] = values[si] + share;
  }
  ctx_.counter->Count(MessageType::kThresholdUpdate, ctx_.num_sites);
  return result;
}

}  // namespace dcv
