#include "sim/geometric_scheme.h"

#include <algorithm>

namespace dcv {

Status GeometricScheme::Initialize(const SimContext& ctx) {
  if (static_cast<int>(ctx.weights.size()) != ctx.num_sites) {
    return InvalidArgumentError("weights size mismatch");
  }
  ctx_ = ctx;
  DCV_ASSIGN_OR_RETURN(channel_, EnsureChannel(&ctx_, &owned_channel_));
  // Initial thresholds: equal split of the global budget (the adaptive
  // rounds take over from the first alarm onward).
  thresholds_.assign(static_cast<size_t>(ctx.num_sites), 0);
  int64_t n = std::max(1, ctx.num_sites);
  for (int i = 0; i < ctx.num_sites; ++i) {
    thresholds_[static_cast<size_t>(i)] =
        ctx.global_threshold / (n * ctx.weights[static_cast<size_t>(i)]);
  }
  site_thresholds_ = thresholds_;
  return OkStatus();
}

Result<EpochResult> GeometricScheme::OnEpoch(
    const std::vector<int64_t>& values) {
  if (static_cast<int>(values.size()) != ctx_.num_sites) {
    return InvalidArgumentError("epoch size mismatch");
  }
  EpochResult result;
  Channel& ch = *channel_;

  // A recovered site may have missed threshold updates pushed while it was
  // down: re-sync it to the coordinator's current threshold.
  for (int site : ch.newly_recovered()) {
    SendStatus s =
        ch.SendToSite(site, MessageType::kThresholdUpdate, /*reliable=*/true);
    if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
      site_thresholds_[static_cast<size_t>(site)] =
          thresholds_[static_cast<size_t>(site)];
    }
    ch.CountResync();
  }

  // Alarms delayed in the network arriving now still trigger a poll.
  std::vector<Channel::Arrival> stale_alarms =
      ch.TakeArrivals(MessageType::kAlarm);

  int delivered_alarms = 0;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    if (!ch.SiteUp(i)) {
      continue;  // A crashed site checks nothing and sends nothing.
    }
    if (values[si] > site_thresholds_[si]) {
      ++result.num_alarms;
      DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kLocalAlarm,
                    ch.epoch(), i, values[si]);
      SendStatus s =
          ch.SendFromSite(i, MessageType::kAlarm, /*reliable=*/true);
      if (s == SendStatus::kDelivered) {
        ++delivered_alarms;
      }
    }
  }
  if (delivered_alarms == 0 && stale_alarms.empty()) {
    return result;
  }

  // Round 1: collect all current values (degraded sites are substituted by
  // the channel's policy; "assume breach" pessimistically places them just
  // above their threshold).
  std::vector<int64_t> pessimistic(static_cast<size_t>(ctx_.num_sites));
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    pessimistic[si] = std::max<int64_t>(thresholds_[si] + 1, 1);
  }
  PollOutcome poll = ch.PollSites(values, ctx_.weights, pessimistic);
  result.polled = true;
  result.violation_reported = poll.weighted_sum > ctx_.global_threshold;

  // Round 2: redistribute the slack equally and install new thresholds.
  // Floor division (also for negative slack) keeps sum A_i*T_i <= T, so the
  // covering property is preserved: while the system stays in violation at
  // least one local constraint stays violated and polling continues. The
  // redistribution is computed from the coordinator's (possibly degraded)
  // view, never from values it did not receive.
  const int64_t n = std::max(1, ctx_.num_sites);
  const int64_t slack = ctx_.global_threshold - poll.weighted_sum;
  for (int i = 0; i < ctx_.num_sites; ++i) {
    size_t si = static_cast<size_t>(i);
    // Per-site slack share is in weighted units; convert to value units.
    int64_t denom = n * ctx_.weights[si];
    int64_t share = slack >= 0 ? slack / denom
                               : -((-slack + denom - 1) / denom);
    // Thresholds may go negative while the system is in violation; a
    // negative threshold simply means "always alarm", which is what keeps
    // the coordinator polling until the violation clears.
    thresholds_[si] = poll.values[si] + share;
    SendStatus s =
        ch.SendToSite(i, MessageType::kThresholdUpdate, /*reliable=*/true);
    if (s == SendStatus::kDelivered || s == SendStatus::kDelayed) {
      site_thresholds_[si] = thresholds_[si];
      DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kThresholdUpdate,
                    ch.epoch(), i, thresholds_[si]);
    }
  }
  DCV_OBS_EVENT(ctx_.recorder, obs::TraceEventKind::kThresholdRecompute,
                ch.epoch(), obs::TraceRecorder::kCoordinator,
                static_cast<int64_t>(ctx_.num_sites));
  return result;
}

}  // namespace dcv
