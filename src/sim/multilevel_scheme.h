#ifndef DCV_SIM_MULTILEVEL_SCHEME_H_
#define DCV_SIM_MULTILEVEL_SCHEME_H_

#include <memory>
#include <vector>

#include "sim/scheme.h"
#include "threshold/solver.h"

namespace dcv {

/// Implementation of the paper's future-work proposal (§7): "instead of a
/// single local constraint threshold at each site, it may be possible to
/// further reduce global polling overhead ... by maintaining multiple local
/// thresholds per site and tracking each threshold violation locally."
///
/// Each site's domain is cut into bands by a ladder of thresholds placed at
/// quantiles of its training distribution. A site sends one (cheap) report
/// whenever its value crosses into a different band; the coordinator
/// maintains each site's current band and hence an upper bound
/// u_i = (band's upper edge) on each X_i. A (2n-message) global poll is
/// issued only when sum_i A_i * u_i > T — i.e., when the per-band bounds can
/// no longer certify the global constraint.
///
/// Detection is still guaranteed: sum A_i X_i <= sum A_i u_i at all times,
/// so any violation forces a poll. The trade-off the paper anticipates is
/// visible directly: more levels => more band-crossing traffic but fewer
/// full polls.
class MultiLevelScheme : public DetectionScheme {
 public:
  struct Options {
    /// Number of bands per site (>= 2). Two bands with the top edge from a
    /// ThresholdSolver degenerates to the single-threshold scheme with
    /// band-change hysteresis.
    int num_levels = 4;

    /// Solver used to place the *top* rung (below which the global
    /// constraint is certified even if every site sits at its rung);
    /// required. The remaining rungs are placed at geometric quantiles of
    /// the training distribution below the top rung.
    const ThresholdSolver* solver = nullptr;

    /// Equi-depth histogram resolution for the training distributions.
    int histogram_buckets = 100;

    /// Headroom multiplier for each site's declared domain maximum.
    double domain_headroom = 4.0;
  };

  explicit MultiLevelScheme(Options options) : options_(options) {}

  std::string_view name() const override { return "multi-level"; }

  Status Initialize(const SimContext& ctx) override;

  Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) override;

  /// Band edges of one site (ascending; the last edge is the domain max).
  const std::vector<int64_t>& edges(int site) const {
    return edges_[static_cast<size_t>(site)];
  }

 private:
  int BandOf(int site, int64_t value) const;

  Options options_;
  SimContext ctx_;
  Channel* channel_ = nullptr;
  std::unique_ptr<Channel> owned_channel_;
  std::vector<std::vector<int64_t>> edges_;  // edges_[site], ascending.
  /// Coordinator's view per site; starts (and re-enters after a crash) at
  /// the virtual overflow band, which forces polling until a report lands.
  std::vector<int> band_;
  /// Band the site last put on the wire; -1 before the site introduces
  /// itself (or after it recovers from a crash and must re-introduce).
  std::vector<int> reported_band_;
  /// edges_[site].back(), the assume-breach substitute for unpollable
  /// sites.
  std::vector<int64_t> pessimistic_;
};

}  // namespace dcv

#endif  // DCV_SIM_MULTILEVEL_SCHEME_H_
