#ifndef DCV_SIM_GEOMETRIC_SCHEME_H_
#define DCV_SIM_GEOMETRIC_SCHEME_H_

#include <memory>
#include <vector>

#include "sim/scheme.h"

namespace dcv {

/// The Geometric comparator (paper §6.1, simplifying Sharfman et al.,
/// SIGMOD'06): local thresholds are adjusted dynamically after every local
/// violation. On an alarm the coordinator (round 1) polls all sites for
/// their current values, then (round 2) redistributes the slack equally:
///
///   T_i  <-  X_i + (T - sum_j X_j) / n.
///
/// Each violation therefore costs two message rounds: n requests +
/// n responses, plus n threshold updates — in addition to the alarms.
/// The scheme ignores the data distribution entirely, which is exactly the
/// gap the paper's FPTAS exploits.
class GeometricScheme : public DetectionScheme {
 public:
  std::string_view name() const override { return "geometric"; }

  Status Initialize(const SimContext& ctx) override;

  Result<EpochResult> OnEpoch(const std::vector<int64_t>& values) override;

  const std::vector<int64_t>& thresholds() const { return thresholds_; }

 private:
  SimContext ctx_;
  Channel* channel_ = nullptr;
  std::unique_ptr<Channel> owned_channel_;
  std::vector<int64_t> thresholds_;
  /// What each site actually enforces; diverges from the coordinator's
  /// `thresholds_` when an update is lost or the site is crashed, and
  /// converges again via the recovery re-sync.
  std::vector<int64_t> site_thresholds_;
};

}  // namespace dcv

#endif  // DCV_SIM_GEOMETRIC_SCHEME_H_
