#include "sim/monitor_plan.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace dcv {
namespace {

constexpr std::string_view kHeader = "# dcv-monitor-plan v1";

bool HasWhitespace(const std::string& s) {
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status MonitorPlan::Validate() const {
  if (site_names.size() != bounds.size()) {
    return InvalidArgumentError("site_names and bounds are misaligned");
  }
  for (size_t i = 0; i < site_names.size(); ++i) {
    if (site_names[i].empty() || HasWhitespace(site_names[i])) {
      return InvalidArgumentError("site name '" + site_names[i] +
                                  "' must be nonempty without whitespace");
    }
    for (size_t j = 0; j < i; ++j) {
      if (site_names[j] == site_names[i]) {
        return InvalidArgumentError("duplicate site name '" + site_names[i] +
                                    "'");
      }
    }
    if (bounds[i].lo < 0) {
      return InvalidArgumentError("negative lower bound for site '" +
                                  site_names[i] + "'");
    }
  }
  return OkStatus();
}

std::string MonitorPlan::Serialize() const {
  std::string out(kHeader);
  out += "\n";
  if (!constraint_text.empty()) {
    out += "constraint: " + constraint_text + "\n";
  }
  out += "threshold: " + std::to_string(global_threshold) + "\n";
  if (!solver_name.empty()) {
    out += "solver: " + solver_name + "\n";
  }
  for (size_t i = 0; i < site_names.size(); ++i) {
    out += "site: " + site_names[i] + " " + std::to_string(bounds[i].lo) +
           " " + std::to_string(bounds[i].hi) + "\n";
  }
  return out;
}

Result<MonitorPlan> MonitorPlan::Parse(const std::string& text) {
  MonitorPlan plan;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) {
      continue;
    }
    if (!saw_header) {
      if (stripped != kHeader) {
        return InvalidArgumentError(
            "not a dcv monitor plan (missing version header)");
      }
      saw_header = true;
      continue;
    }
    if (stripped.front() == '#') {
      continue;  // Comment.
    }
    size_t colon = stripped.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError("malformed plan line " +
                                  std::to_string(line_no));
    }
    std::string key(StripWhitespace(stripped.substr(0, colon)));
    std::string value(StripWhitespace(stripped.substr(colon + 1)));
    if (key == "constraint") {
      plan.constraint_text = value;
    } else if (key == "threshold") {
      DCV_ASSIGN_OR_RETURN(plan.global_threshold, ParseInt64(value));
    } else if (key == "solver") {
      plan.solver_name = value;
    } else if (key == "site") {
      std::vector<std::string> parts;
      for (const std::string& p : StrSplit(value, ' ')) {
        if (!p.empty()) {
          parts.push_back(p);
        }
      }
      if (parts.size() != 3) {
        return InvalidArgumentError("site line " + std::to_string(line_no) +
                                    " must be: site: <name> <lo> <hi>");
      }
      DCV_ASSIGN_OR_RETURN(int64_t lo, ParseInt64(parts[1]));
      DCV_ASSIGN_OR_RETURN(int64_t hi, ParseInt64(parts[2]));
      plan.site_names.push_back(parts[0]);
      plan.bounds.push_back(SiteBounds{lo, hi});
    } else {
      return InvalidArgumentError("unknown plan key '" + key + "' on line " +
                                  std::to_string(line_no));
    }
  }
  if (!saw_header) {
    return InvalidArgumentError("empty monitor plan");
  }
  DCV_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Status MonitorPlan::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return InternalError("cannot open file for writing: " + path);
  }
  out << Serialize();
  if (!out) {
    return InternalError("error writing file: " + path);
  }
  return OkStatus();
}

Result<MonitorPlan> MonitorPlan::ReadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

}  // namespace dcv
