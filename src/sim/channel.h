#ifndef DCV_SIM_CHANNEL_H_
#define DCV_SIM_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "obs/obs.h"
#include "sim/message.h"

namespace dcv {

/// Half-open epoch interval [from, to).
struct EpochWindow {
  int64_t from = 0;
  int64_t to = 0;
};

/// Site `site` is down during [from, to): it neither sends nor receives,
/// and any message addressed to it is black-holed.
struct CrashWindow {
  int site = 0;
  int64_t from = 0;
  int64_t to = 0;
};

/// What the coordinator substitutes for a site that fails to answer a poll
/// within the epoch deadline (crashed, partitioned, or all retries lost).
enum class DegradeMode {
  /// Use the site's last successfully reported value; fall back to the
  /// scheme's pessimistic value (then 0) when it has never reported.
  kLastKnown,
  /// Use the scheme's pessimistic per-site value (local threshold assumed
  /// breached / domain maximum): over-report rather than miss.
  kAssumeBreach,
};

/// Ack + bounded-retransmission policy for reliable sends. Retries happen
/// within the sending epoch (epochs are minutes; retransmission rounds are
/// sub-epoch), spaced by exponential backoff whose cumulative wait is
/// recorded in ChannelStats::backoff_ticks.
struct RetryPolicy {
  /// Off (the default): reliable sends degrade to single unacknowledged
  /// transmissions and no kAck messages exist — message counts stay
  /// bit-identical to the pre-channel protocol.
  bool enable_acks = false;

  /// Total transmissions per reliable send (first attempt + retries).
  int max_attempts = 4;

  /// First retry waits this many sub-epoch ticks; each further retry
  /// doubles the wait.
  int backoff_base_ticks = 1;
};

/// Deterministic fault configuration for one simulation run. The default
/// spec is the perfect network: nothing is ever lost, duplicated, delayed,
/// or crashed, and no acks are sent.
struct FaultSpec {
  /// Per-transmission loss probability on every site<->coordinator link.
  double loss = 0.0;

  /// Probability a delivered transmission is duplicated (the duplicate is
  /// charged as one extra message; receivers deduplicate).
  double duplicate = 0.0;

  /// Probability a surviving one-way message is delayed by whole epochs
  /// (uniform in [1, max_delay_epochs]) instead of arriving in-epoch.
  double delay = 0.0;
  int max_delay_epochs = 3;

  /// Optional per-site loss override (size num_sites); empty = uniform.
  std::vector<double> per_site_loss;

  /// Site crash/recovery schedule.
  std::vector<CrashWindow> crashes;

  /// Windows during which the coordinator is partitioned from every site:
  /// all site<->coordinator traffic is lost.
  std::vector<EpochWindow> partitions;

  RetryPolicy retry;
  DegradeMode degrade = DegradeMode::kLastKnown;

  /// Seed for the channel's private Rng: same spec + seed => bit-identical
  /// fault pattern and SimResult.
  uint64_t seed = 0x5eedULL;

  /// True when any fault can ever fire (acks alone do not count).
  bool any_faults() const;

  Status Validate(int num_sites) const;
};

/// Reliability accounting, reported per run (and per segment) alongside the
/// MessageCounter. `transmissions` counts wire messages including
/// retransmissions, duplicates, and acks; the MessageCounter sees the same
/// charges broken down by type.
struct ChannelStats {
  int64_t transmissions = 0;      ///< Wire messages actually sent.
  int64_t delivered = 0;          ///< Arrived in the sending epoch.
  int64_t dropped = 0;            ///< Lost to link loss.
  int64_t blackholed = 0;         ///< Lost to a crashed site / partition.
  int64_t duplicates = 0;         ///< Extra deliveries of the same message.
  int64_t delayed = 0;            ///< Deferred to a later epoch.
  int64_t late_deliveries = 0;    ///< Delayed messages that arrived.
  int64_t delivery_delay_epochs = 0;  ///< Sum of (arrival - send) epochs.
  int64_t retransmissions = 0;    ///< Reliable-send retries.
  int64_t backoff_ticks = 0;      ///< Cumulative exponential-backoff waits.
  int64_t acks = 0;               ///< kAck messages sent.
  int64_t give_ups = 0;           ///< Reliable sends that exhausted retries.
  int64_t crashed_sends = 0;      ///< Sends suppressed: sender was down.
  int64_t timed_out_polls = 0;    ///< Per-site poll round-trips that timed out.
  int64_t degraded_decisions = 0; ///< Polls resolved with substituted values.
  int64_t resyncs = 0;            ///< State re-syncs after site recovery.

  std::string ToString() const;

  /// JSON object with every field (zeros included) in declaration order,
  /// e.g. {"transmissions":12,...,"resyncs":0} — merged into the unified
  /// metrics export (SimResult::ToJson) so reliability counters live next
  /// to the message and detection counters instead of in a parallel struct.
  std::string ToJson() const;
};

/// Field-wise difference, for per-segment reporting.
ChannelStats operator-(const ChannelStats& a, const ChannelStats& b);

/// Field-wise sum, for merging per-shard channel stats into a run total.
ChannelStats operator+(const ChannelStats& a, const ChannelStats& b);

/// Outcome of one one-way send as observed by the *sender*.
enum class SendStatus {
  kDelivered,   ///< Arrived this epoch (reliable: ack'd or known delivered).
  kDelayed,     ///< Will arrive in a later epoch.
  kLost,        ///< Dropped; reliable sends exhausted every retry.
  kSenderDown,  ///< Sender is crashed; nothing was transmitted.
};

/// Outcome of a coordinator poll round over all sites.
struct PollOutcome {
  /// Per-site resolved values: the true value for responders, the
  /// DegradeMode substitute for sites that timed out.
  std::vector<int64_t> values;
  int64_t weighted_sum = 0;  ///< Weighted sum of `values`.
  int responses = 0;         ///< Sites that answered before the deadline.
  int timeouts = 0;          ///< Sites resolved by substitution.
  bool degraded = false;     ///< timeouts > 0.
};

/// The transport between sites and the coordinator. Every protocol message
/// of every detection scheme is routed through a Channel, which charges the
/// run's MessageCounter for each wire transmission and injects faults
/// according to its FaultSpec. A default-constructed Channel is the perfect
/// network and reproduces the pre-channel message counts bit for bit.
///
/// All randomness comes from a private Rng seeded by FaultSpec::seed, so a
/// run is a pure function of (trace, scheme, spec): identical seeds give
/// identical SimResults including retransmission counts.
class Channel {
 public:
  explicit Channel(FaultSpec spec = FaultSpec());

  /// Validates the spec and binds the counter every transmission charges.
  Status Init(int num_sites, MessageCounter* counter);

  /// Attaches observability sinks (either may be null). The channel then
  /// records crash/recovery, retransmission, give-up, poll and degradation
  /// trace events and mirrors wire traffic into `metrics` counters
  /// ("channel/msg/<type>"). Detached (the default) the instrumentation is
  /// a null-pointer branch per event — the perfect-channel fast path stays
  /// allocation-free.
  void SetObserver(obs::MetricsRegistry* metrics, obs::TraceRecorder* recorder);

  /// Advances simulated time: applies the crash/recovery schedule and
  /// partition windows, and moves due delayed messages into the arrival
  /// queue. The runner calls this once per epoch before OnEpoch.
  void BeginEpoch(int64_t epoch);

  int64_t epoch() const { return epoch_; }
  int num_sites() const { return num_sites_; }
  bool SiteUp(int site) const {
    return up_[static_cast<size_t>(site)] != 0;
  }
  bool Partitioned() const { return partitioned_; }

  /// Sites whose crash window ended at this epoch's BeginEpoch. Schemes
  /// re-sync per-site state (thresholds, filters) for these.
  const std::vector<int>& newly_recovered() const { return newly_recovered_; }

  /// One-way site -> coordinator send (alarm, filter/band report, ...).
  /// `payload` rides along for delayed deliveries (see TakeArrivals).
  /// `reliable` engages the ack/retransmission machinery when the spec's
  /// RetryPolicy enables acks; otherwise it is a single transmission.
  SendStatus SendFromSite(int site, MessageType type, bool reliable,
                          int64_t payload = 0);

  /// One-way coordinator -> site send (threshold/filter update).
  SendStatus SendToSite(int site, MessageType type, bool reliable,
                        int64_t payload = 0);

  /// A delayed site -> coordinator message that has now arrived.
  struct Arrival {
    MessageType type = MessageType::kAlarm;
    int site = 0;
    int64_t payload = 0;
    int64_t sent_epoch = 0;
  };

  /// Removes and returns this epoch's arrivals of one type (coordinator
  /// inbox). Schemes poll this for stale alarms / reports.
  std::vector<Arrival> TakeArrivals(MessageType type);

  /// One coordinator poll round with a per-epoch deadline: a request and a
  /// response per site, with bounded retransmission of the round trip when
  /// acks are enabled. Sites that cannot be reached are resolved via
  /// DegradeMode: last-known value or `pessimistic[i]` (pass an empty
  /// vector for schemes with no pessimistic bound; 0 is then the final
  /// fallback). Successful responses update the last-known table.
  PollOutcome PollSites(const std::vector<int64_t>& true_values,
                        const std::vector<int64_t>& weights,
                        const std::vector<int64_t>& pessimistic);

  /// Records a value the coordinator learned out of band (e.g. from a
  /// piggybacked alarm), improving kLastKnown degradation.
  void RecordLastKnown(int site, int64_t value);

  /// Charges nothing; bumps the resync stat (schemes call this when they
  /// push recovery state to a rejoined site).
  void CountResync(int64_t n = 1) {
    stats_.resyncs += n;
    DCV_OBS_EVENT(recorder_, obs::TraceEventKind::kResync, epoch_,
                  obs::TraceRecorder::kCoordinator, n);
  }

  const ChannelStats& stats() const { return stats_; }
  const FaultSpec& spec() const { return spec_; }

  /// True when the spec can never inject a fault (the bit-identical path).
  bool perfect() const { return perfect_; }

 private:
  struct Pending {
    MessageType type;
    int site;
    int64_t payload;
    int64_t sent_epoch;
    int64_t deliver_epoch;
    bool to_coordinator;
  };

  double LossFor(int site) const;
  bool Lose(int site);

  /// Charges `n` wire messages of `type` to the MessageCounter and, when an
  /// observer is attached, to the mirrored registry counter.
  void Charge(MessageType type, int64_t n = 1) {
    counter_->Count(type, n);
    DCV_OBS_COUNT(msg_counters_[static_cast<size_t>(type)], n);
  }
  /// One-way transmission fate shared by both directions. Charges the
  /// counter; returns kDelivered/kDelayed/kLost. `receiver_up` covers the
  /// crashed-receiver black hole.
  SendStatus TransmitOnce(int site, MessageType type, int64_t payload,
                          bool to_coordinator, bool receiver_up,
                          bool allow_delay);
  SendStatus SendOneWay(int site, MessageType type, bool reliable,
                        int64_t payload, bool to_coordinator);

  FaultSpec spec_;
  bool perfect_ = true;
  int num_sites_ = 0;
  MessageCounter* counter_ = nullptr;
  Rng rng_;
  int64_t epoch_ = 0;
  bool partitioned_ = false;
  std::vector<char> up_;
  std::vector<int> newly_recovered_;
  std::vector<Pending> pending_;
  std::vector<Arrival> arrivals_;
  std::vector<int64_t> last_known_;
  std::vector<char> has_last_known_;
  ChannelStats stats_;

  /// Observability (all null when detached). msg_counters_ caches one
  /// registry counter per MessageType so charging a message is one relaxed
  /// atomic add, with no name lookup on the hot path.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* recorder_ = nullptr;
  std::array<obs::Counter*, kNumMessageTypes> msg_counters_{};
};

}  // namespace dcv

#endif  // DCV_SIM_CHANNEL_H_
